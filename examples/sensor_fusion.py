#!/usr/bin/env python
"""Geo-distributed sensor fusion: the motivating streaming scenario.

Three sensor fields (2000 sensors each) report through their nearest
datacenter; the analysis wants global per-region temperature statistics
every 30 seconds at a single aggregation site. The example contrasts two
designs on identical input:

* **ship raw records** — every reading crosses the WAN;
* **site-local aggregation** (the SAGE design) — each site folds its
  readings into mergeable window partials first.

Run: ``python examples/sensor_fusion.py``
"""

from repro.cloud.deployment import CloudEnvironment
from repro.core.engine import SageEngine
from repro.analysis.tables import render_table
from repro.simulation.units import MB, format_bytes
from repro.streaming.runtime import GeoStreamRuntime
from repro.streaming.shipping import SageShipping
from repro.workloads.sensors import sensor_fusion_job

DURATION = 300.0


def run(ship_raw: bool, seed: int = 7):
    env = CloudEnvironment(seed=seed)
    engine = SageEngine(
        env, deployment_spec={"NEU": 3, "WEU": 3, "EUS": 3, "NUS": 3}
    )
    engine.start(learning_phase=120.0)
    job = sensor_fusion_job(ship_raw_records=ship_raw)
    runtime = GeoStreamRuntime(engine, job, SageShipping.factory(n_nodes=2))
    runtime.run_for(DURATION)
    return runtime


def main() -> None:
    print("Running sensor fusion twice on identical sensor data...")
    rows = []
    for label, raw in (("site-local partials", False), ("raw records", True)):
        rt = run(ship_raw=raw)
        stats = rt.latency_stats()
        rows.append(
            [
                label,
                rt.records_ingested(),
                len(rt.results),
                format_bytes(rt.wan_bytes()),
                f"{stats.p50:.1f}",
                f"{stats.p95:.1f}",
            ]
        )
    print()
    print(
        render_table(
            ["design", "readings", "results", "WAN bytes", "p50 lat (s)",
             "p95 lat (s)"],
            rows,
            title=f"Global 30 s statistics over {DURATION:.0f} s of sensor data",
        )
    )
    print(
        "\nLocal aggregation ships orders of magnitude less over the wide"
        " area for the same results."
    )
    rt = run(ship_raw=False, seed=8)
    sample = [r for r in rt.results][:3]
    print("\nSample global window results:")
    for r in sample:
        print(
            f"  window [{r.window.start:.0f},{r.window.end:.0f}) {r.key}: "
            f"mean={r.value:.2f} from {r.sites} site(s), "
            f"{r.record_count} readings, latency {r.latency:.1f}s"
        )


if __name__ == "__main__":
    main()
