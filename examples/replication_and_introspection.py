#!/usr/bin/env python
"""Geo-replication with dissemination trees + delivered-SLA introspection.

A reference dataset produced in North Europe must be replicated to the
five other datacenters (availability + locality for the compute that
follows). The example compares the naive unicast star against the
planner's forwarding tree, then prints the Introspection-as-a-Service
report — the delivered per-link performance the deployment actually
received, built from the same monitoring that drove the transfers.

Run: ``python examples/replication_and_introspection.py``
"""

from repro.analysis.introspection import introspection_report
from repro.analysis.tables import render_table
from repro.core.dissemination import Disseminator
from repro.simulation.units import MB, format_duration
from repro.workloads.synthetic import fresh_engine

SIZE = 500 * MB
DESTINATIONS = ["WEU", "EUS", "NUS", "SUS", "WUS"]
SPEC = {"NEU": 3, "WEU": 3, "EUS": 3, "NUS": 3, "SUS": 3, "WUS": 3}


def main() -> None:
    print(f"Replicating {SIZE / MB:.0f} MB from NEU to {', '.join(DESTINATIONS)}\n")

    rows = []
    for label, use_tree in (("unicast star", False), ("forwarding tree", True)):
        engine = fresh_engine(seed=404, spec=SPEC, learning_phase=240.0)
        diss = Disseminator(engine, n_nodes_per_edge=3)
        plan = (
            diss.plan("NEU", DESTINATIONS)
            if use_tree
            else diss.unicast_plan("NEU", DESTINATIONS)
        )
        report = diss.run(SIZE, plan)
        rows.append(
            [
                label,
                plan.depth(),
                format_duration(report.makespan),
                format_duration(min(report.arrival(d) for d in DESTINATIONS)),
            ]
        )
        if use_tree:
            print(f"tree: {plan.describe()}")
            tree_engine = engine

    print()
    print(
        render_table(
            ["strategy", "depth", "makespan", "first replica"],
            rows,
            title="Replication to five sites",
        )
    )

    print("\n" + introspection_report(tree_engine.monitor))


if __name__ == "__main__":
    main()
