#!/usr/bin/env python
"""Exploring the money/time trade-off before committing to a transfer.

The decision engine's models are exposed directly, so an operator can ask
"what would it cost?" without moving a byte: this example prints the full
cost/time curve for a 4 GB transatlantic transfer, its Pareto front and
knee, then executes the knee plan and compares prediction with outcome.

Run: ``python examples/budget_planner.py``
"""

from repro import SageSession
from repro.analysis.tables import render_table
from repro.simulation.units import GB, format_duration

SIZE = 4 * GB


def main() -> None:
    session = SageSession(
        deployment={"NEU": 8, "WEU": 3, "EUS": 3, "NUS": 8}, seed=5
    )
    dm = session.engine.decisions
    thr = session.estimated_throughput("NEU", "NUS")
    print(f"Current NEU->NUS estimate: {thr / 1e6:.1f} MB/s\n")

    options = dm.tradeoff.options(SIZE, thr, max_nodes=12)
    front = dm.tradeoff.pareto_front(options)
    knee = dm.tradeoff.knee(options)
    rows = [
        [
            o.n_nodes,
            format_duration(o.predicted_time),
            f"${o.usd:.3f}",
            "*" if o in front else "",
            "<- knee" if o is knee else "",
        ]
        for o in options
    ]
    print(
        render_table(
            ["nodes", "predicted time", "predicted cost", "pareto", ""],
            rows,
            title=f"Cost/time curve for a {SIZE / GB:.0f} GB NEU->NUS transfer",
        )
    )

    print("\nExecuting the knee configuration...")
    result = session.transfer("NEU", "NUS", SIZE, n_nodes=knee.n_nodes)
    print(
        f"predicted {format_duration(knee.predicted_time)} / ${knee.usd:.3f}"
        f"  ->  measured {format_duration(result.seconds)} / ${result.usd:.3f}"
        f"  (error {abs(result.seconds - knee.predicted_time) / knee.predicted_time:.0%})"
    )
    session.close()


if __name__ == "__main__":
    main()
