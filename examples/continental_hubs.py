#!/usr/bin/env python
"""Hierarchical aggregation: continental hubs before the backbone.

Three European sites analyse click streams whose global counts are needed
in West US. Flat topology ships every site's window partials across the
Atlantic; the hierarchical topology merges them at a West-Europe hub
first, so the expensive backbone carries one merged partial per window
instead of three. The example runs both on identical input and prints the
backbone volume, result latency and count completeness side by side.

Run: ``python examples/continental_hubs.py``
"""

from repro.analysis.tables import render_table
from repro.simulation.units import KB, format_bytes
from repro.streaming import (
    GeoStreamRuntime,
    HierarchicalRuntime,
    PoissonSource,
    SageShipping,
    SiteSpec,
    StreamJob,
    TumblingWindows,
    builtin_aggregate,
)
from repro.workloads.synthetic import fresh_engine

EU_SITES = ["NEU", "WEU", "EUS"]
DURATION = 240.0


def make_job() -> StreamJob:
    return StreamJob(
        name="global-clicks",
        sites=[
            SiteSpec(
                region,
                [
                    PoissonSource(
                        f"clicks-{region.lower()}",
                        rate=500.0,
                        keys=[f"/page/{i:02d}" for i in range(20)],
                    )
                ],
            )
            for region in EU_SITES
        ],
        aggregation_region="WUS",
        windows=TumblingWindows(10.0),
        aggregate=builtin_aggregate("count"),
    )


def make_engine():
    return fresh_engine(
        seed=77,
        spec={"NEU": 3, "WEU": 3, "EUS": 3, "WUS": 3},
        learning_phase=180.0,
    )


def main() -> None:
    print(f"Counting clicks from {', '.join(EU_SITES)} globally in WUS...\n")
    rows = []

    flat = GeoStreamRuntime(
        make_engine(), make_job(), SageShipping.factory(n_nodes=1)
    )
    flat.run_for(DURATION)
    flat_counted = sum(r.value for r in flat.results)
    rows.append(
        [
            "flat (3x transatlantic)",
            format_bytes(flat.wan_bytes()),
            f"{flat.latency_stats().p50:.1f}",
            flat_counted,
        ]
    )

    hier = HierarchicalRuntime(
        make_engine(),
        make_job(),
        hubs={region: "WEU" for region in EU_SITES},
        site_shipping_factory=SageShipping.factory(n_nodes=1),
        hub_shipping_factory=SageShipping.factory(n_nodes=2),
        hub_hold=2.0,
    )
    hier.run_for(DURATION)
    hier_counted = sum(r.value for r in hier.results)
    rows.append(
        [
            "hubbed (1x via WEU)",
            format_bytes(hier.backbone_bytes()),
            f"{hier.latency_stats().p50:.1f}",
            hier_counted,
        ]
    )

    print(
        render_table(
            ["topology", "backbone bytes", "p50 latency (s)", "clicks counted"],
            rows,
            title=f"{DURATION:.0f} s of global click counting",
        )
    )
    hub = hier.hub_aggregators["WEU"]
    print(
        f"\nWEU hub merged {hub.partials_in} site partials into "
        f"{hub.partials_out} backbone partials "
        f"({hub.reduction_ratio:.0%} reduction); edge traffic stayed "
        f"intra-Europe ({format_bytes(hier.edge_bytes())})."
    )


if __name__ == "__main__":
    main()
