#!/usr/bin/env python
"""The A-Brain scenario: multi-site MapReduce with a Meta-Reducer.

Genetic × neuro-imaging association tests run as MapReduce jobs in three
datacenters (the resource quota of any single one is too small); each
site's reducers emit partial correlation files that must reach the
Meta-Reducer site. This example

1. computes one real map task (a SNP × voxel correlation block over a
   synthetic cohort) to show the scientific kernel, then
2. runs the wide-area shipping phase of the medium configuration with two
   backends — blob staging vs. the managed transfer substrate.

Run: ``python examples/abrain_metareduce.py``
"""

import numpy as np

from repro.cloud.deployment import CloudEnvironment
from repro.core.engine import SageEngine
from repro.analysis.tables import render_table
from repro.simulation.units import format_bytes, format_duration
from repro.streaming.shipping import BlobShipping, SageShipping
from repro.workloads.abrain import ABrainConfig, ABrainWorkload


def engine_for(seed: int) -> SageEngine:
    env = CloudEnvironment(seed=seed)
    engine = SageEngine(
        env, deployment_spec={"NEU": 4, "WEU": 4, "NUS": 4}
    )
    engine.start(learning_phase=120.0)
    return engine


def main() -> None:
    # --- the scientific kernel -------------------------------------------
    workload = ABrainWorkload(
        ABrainConfig("demo", files_per_site=200, file_size=1_000_000.0),
        seed=42,
    )
    rng = np.random.default_rng(0)
    block = workload.synth_partial(rng, snps=64, voxels=64, subjects=200)
    strongest = np.unravel_index(np.abs(block).argmax(), block.shape)
    print(
        f"Map task: correlation block {block.shape}, strongest association "
        f"SNP {strongest[0]} x voxel {strongest[1]} (r={block[strongest]:.3f})"
    )
    print(
        f"Planted signal recovered: SNP 0 mean |r| = "
        f"{np.abs(block[0]).mean():.3f} vs background "
        f"{np.abs(block[1:]).mean():.3f}"
    )

    # --- the shipping phase ----------------------------------------------
    total = workload.config.total_bytes
    print(
        f"\nShipping {workload.config.files_per_site} partial files/site "
        f"from NEU+WEU to the Meta-Reducer in NUS "
        f"({format_bytes(total)} total)..."
    )
    rows = []
    for label, factory in (
        ("AzureBlobs staging", BlobShipping.factory()),
        ("GEO-SAGE managed", SageShipping.factory(n_nodes=3)),
    ):
        engine = engine_for(seed=99)
        report = workload.run_shipping(engine, factory)
        rows.append(
            [
                label,
                format_duration(report.transfer_time),
                format_duration(report.completion_time),
                f"{report.mean_file_time * 1000:.0f} ms",
            ]
        )
    print()
    print(
        render_table(
            ["backend", "transfer", "total (with reduce)", "per file"],
            rows,
            title="Partial-result shipping to the Meta-Reducer",
        )
    )


if __name__ == "__main__":
    main()
