"""Unit + property tests for the transfer-time model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.time_model import TransferTimeModel
from repro.simulation.units import GB, MB


def test_single_node_is_size_over_throughput():
    m = TransferTimeModel(gain=0.5)
    assert m.estimate(100 * MB, 10 * MB, 1) == pytest.approx(10.0)


def test_speedup_formula():
    m = TransferTimeModel(gain=0.5)
    assert m.speedup(1) == 1.0
    assert m.speedup(3) == 2.0
    assert m.estimate(100 * MB, 10 * MB, 3) == pytest.approx(5.0)


def test_more_nodes_never_slower():
    m = TransferTimeModel(gain=0.3)
    times = [m.estimate(1 * GB, 5 * MB, n) for n in range(1, 20)]
    assert times == sorted(times, reverse=True)


def test_diminishing_marginal_gain():
    m = TransferTimeModel(gain=0.5)
    t = [m.estimate(1 * GB, 5 * MB, n) for n in range(1, 10)]
    marginal = [t[i] - t[i + 1] for i in range(len(t) - 1)]
    assert all(marginal[i] >= marginal[i + 1] for i in range(len(marginal) - 1))


def test_nodes_for_deadline():
    m = TransferTimeModel(gain=0.5)
    # 1 node: 100 s; need <= 30 s → speedup >= 3.33 → n >= 5.67 → 6 nodes.
    assert m.nodes_for_deadline(1000 * MB, 10 * MB, 30.0) == 6
    assert m.nodes_for_deadline(1000 * MB, 10 * MB, 200.0) == 1
    assert m.nodes_for_deadline(1000 * MB, 10 * MB, 0.1, max_nodes=8) is None


def test_validation():
    with pytest.raises(ValueError):
        TransferTimeModel(gain=0.0)
    with pytest.raises(ValueError):
        TransferTimeModel(gain=1.0)
    m = TransferTimeModel()
    with pytest.raises(ValueError):
        m.estimate(0.0, 1.0)
    with pytest.raises(ValueError):
        m.estimate(1.0, 0.0)
    with pytest.raises(ValueError):
        m.speedup(0)
    with pytest.raises(ValueError):
        m.nodes_for_deadline(1.0, 1.0, 0.0)


def test_calibration_recovers_true_gain():
    true = TransferTimeModel(gain=0.4)
    base = 5 * MB
    obs = [(n, true.effective_throughput(base, n)) for n in range(2, 9)]
    fitted = TransferTimeModel(gain=0.9)
    fitted.calibrate(obs, base)
    assert fitted.gain == pytest.approx(0.4, abs=0.01)


def test_calibration_ignores_uninformative_points():
    m = TransferTimeModel(gain=0.65)
    assert m.calibrate([(1, 5 * MB)], 5 * MB) == 0.65  # n=1 says nothing
    assert m.calibrate([], 5 * MB) == 0.65
    with pytest.raises(ValueError):
        m.calibrate([(2, 1.0)], 0.0)


def test_calibration_clamped_to_bounds():
    m = TransferTimeModel(gain=0.5, gain_bounds=(0.1, 0.9))
    # Observations implying gain > 1 clamp to the upper bound.
    m.calibrate([(2, 30 * MB)], 5 * MB)
    assert m.gain == 0.9
    m.calibrate([(5, 1 * MB)], 5 * MB)  # implies negative gain
    assert m.gain == 0.1


@given(
    st.floats(min_value=0.05, max_value=0.95),
    st.integers(min_value=1, max_value=64),
    st.floats(min_value=1e3, max_value=1e9),
    st.floats(min_value=1e3, max_value=1e12),
)
@settings(max_examples=80, deadline=None)
def test_property_time_positive_and_bounded(gain, n, thr, size):
    m = TransferTimeModel(gain=gain)
    t = m.estimate(size, thr, n)
    assert 0 < t <= size / thr * 1.0000001
    # Speedup can never exceed n (no superlinear parallelism).
    assert m.speedup(n) <= n + 1e-9
