"""Tests for samplers and the Monitoring Agent."""

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.cloud.network import Flow
from repro.monitor.agent import MonitorConfig, MonitoringAgent
from repro.monitor.samplers import ActiveProbeSampler, CpuSampler, PassiveLinkSampler
from repro.simulation.units import MB


@pytest.fixture
def env():
    return CloudEnvironment(seed=21, variability_sigma=0.0, glitches=False)


def deployed(env, spec={"NEU": 2, "NUS": 2}):
    for region, n in spec.items():
        env.provision(region, "Small", n)
    return env


# ----------------------------------------------------------------------
# Samplers
# ----------------------------------------------------------------------
def test_passive_sampler_close_to_truth(env):
    deployed(env)
    src = env.deployment.vms("NEU")[0]
    dst = env.deployment.vms("NUS")[0]
    sampler = PassiveLinkSampler(env.network, src, dst, streams=4, noise_cv=0.05)
    values = []
    sampler.sample(lambda t, v: values.append(v))
    truth = env.network.isolated_rate([src, dst], streams=4)
    assert values and values[0] == pytest.approx(truth, rel=0.25)


def test_active_probe_consumes_bandwidth_and_measures(env):
    deployed(env)
    src = env.deployment.vms("NEU")[0]
    dst = env.deployment.vms("NUS")[0]
    sampler = ActiveProbeSampler(env.network, src, dst, probe_size=4 * MB, streams=4)
    values = []
    sampler.sample(lambda t, v: values.append(v))
    assert len(env.network.flows) == 1  # a real flow is in the network
    env.sim.run_until(60.0)
    assert values
    truth = env.network.isolated_rate([src, dst], streams=4)
    assert values[0] == pytest.approx(truth, rel=0.15)
    assert sampler.bytes_probed == 4 * MB


def test_active_probe_does_not_stack(env):
    deployed(env)
    src = env.deployment.vms("NEU")[0]
    dst = env.deployment.vms("NUS")[0]
    sampler = ActiveProbeSampler(env.network, src, dst, probe_size=50 * MB)
    sampler.sample(lambda t, v: None)
    sampler.sample(lambda t, v: None)  # ignored while in flight
    assert sampler.probes_sent == 1


def test_cpu_sampler_reflects_load_and_health(env):
    deployed(env)
    vm = env.deployment.vms("NEU")[0]
    sampler = CpuSampler(vm, env.network, noise_cv=0.0)
    out = []
    sampler.sample(lambda t, v: out.append(v))
    assert out[0] == pytest.approx(1.0)
    vm.cpu_load = 0.6
    vm.degrade(0.5)
    sampler.sample(lambda t, v: out.append(v))
    assert out[1] == pytest.approx(0.2)


# ----------------------------------------------------------------------
# Agent
# ----------------------------------------------------------------------
def test_agent_builds_link_map(env):
    deployed(env)
    agent = MonitoringAgent(env.network, env.deployment, MonitorConfig(interval=30))
    agent.watch_all_links()
    agent.start()
    env.sim.run_until(300.0)
    est = agent.link_map.estimate("NEU", "NUS")
    assert est.known
    assert est.samples >= 5
    truth = env.network.isolated_rate(
        [env.deployment.vms("NEU")[0], env.deployment.vms("NUS")[0]], streams=4
    )
    assert est.mean == pytest.approx(truth, rel=0.2)


def test_agent_watch_requires_vms(env):
    env.provision("NEU", "Small", 1)
    agent = MonitoringAgent(env.network, env.deployment)
    with pytest.raises(ValueError):
        agent.watch_link("NEU", "NUS")


def test_agent_records_histories(env):
    deployed(env)
    agent = MonitoringAgent(env.network, env.deployment, MonitorConfig(interval=30))
    agent.watch_link("NEU", "NUS")
    agent.start()
    env.sim.run_until(120.0)
    hist = agent.history("thr/NEU->NUS")
    assert len(hist) >= 3


def test_agent_suspends_during_application_transfer(env):
    deployed(env)
    agent = MonitoringAgent(env.network, env.deployment, MonitorConfig(interval=10))
    agent.watch_link("NEU", "NUS")
    agent.start()
    env.sim.run_until(50.0)
    taken_before = agent.samples_taken
    flow = Flow(
        [env.deployment.vms("NEU")[1], env.deployment.vms("NUS")[1]],
        500 * MB,
        streams=4,
        label="app-transfer",
    )
    env.network.start_flow(flow)
    env.sim.run_until(env.now + 50.0)
    assert agent.samples_suspended > 0
    assert agent.samples_taken - taken_before <= 1  # at most one race


def test_agent_cpu_threshold_suspends(env):
    deployed(env)
    cfg = MonitorConfig(interval=10, cpu_threshold=0.5)
    agent = MonitoringAgent(env.network, env.deployment, cfg)
    agent.watch_link("NEU", "NUS")
    env.deployment.vms("NEU")[0].cpu_load = 0.9
    agent.start()
    env.sim.run_until(60.0)
    assert agent.samples_taken == 0
    assert agent.samples_suspended > 0


def test_agent_ingest_external_observation(env):
    deployed(env)
    agent = MonitoringAgent(env.network, env.deployment)
    agent.watch_link("NEU", "NUS")
    agent.ingest("NEU", "NUS", 0.0, 5 * MB)
    assert agent.estimated_throughput("NEU", "NUS") == pytest.approx(5 * MB)


def test_agent_double_start_rejected(env):
    deployed(env)
    agent = MonitoringAgent(env.network, env.deployment)
    agent.start()
    with pytest.raises(RuntimeError):
        agent.start()
    agent.stop()
    agent.stop()  # idempotent


def test_node_health_measurement(env):
    deployed(env)
    agent = MonitoringAgent(env.network, env.deployment)
    vm = env.deployment.vms("NEU")[0]
    assert agent.node_health(vm) == pytest.approx(1.0, abs=0.1)
    vm.degrade(0.3)
    assert agent.node_health(vm) == pytest.approx(0.3, abs=0.05)


def test_linkmap_matrix_rows(env):
    deployed(env)
    agent = MonitoringAgent(env.network, env.deployment, MonitorConfig(interval=30))
    agent.watch_all_links()
    agent.start()
    env.sim.run_until(120.0)
    rows = agent.link_map.matrix_rows()
    assert rows[0][0] == "from\\to"
    assert len(rows) == 3  # header + two regions
    flat = " ".join(" ".join(r) for r in rows)
    assert "?" not in flat  # every watched pair has an estimate
