"""Circuit-breaker state machine and fault-bus cooperation."""

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.core.engine import SageEngine
from repro.flow.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


@pytest.fixture
def engine():
    env = CloudEnvironment(seed=5, variability_sigma=0.0, glitches=False)
    eng = SageEngine(env, deployment_spec={"NEU": 1, "NUS": 1})
    eng.start(learning_phase=10.0)
    return eng


def make_breaker(engine, **kwargs):
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("reset_timeout", 30.0)
    return CircuitBreaker(engine, link=("NEU", "NUS"), **kwargs)


def advance(engine, seconds):
    engine.run_until(engine.sim.now + seconds)


def test_breaker_validation(engine):
    with pytest.raises(ValueError):
        CircuitBreaker(engine, failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(engine, reset_timeout=0.0)


def test_breaker_opens_after_threshold(engine):
    b = make_breaker(engine)
    b.record_failure()
    b.record_failure()
    assert b.state == CLOSED and b.allow()
    b.record_failure()
    assert b.state == OPEN
    assert b.opens == 1
    assert not b.allow()


def test_success_resets_the_failure_count(engine):
    b = make_breaker(engine)
    b.record_failure()
    b.record_failure()
    b.record_success()
    b.record_failure()
    b.record_failure()
    assert b.state == CLOSED  # never reached 3 consecutive


def test_half_open_probe_success_closes(engine):
    b = make_breaker(engine)
    b.trip()
    assert b.state == OPEN
    assert b.probe_delay() == pytest.approx(30.0)
    advance(engine, 31.0)
    assert b.allow()  # the first call past the timeout is the probe
    assert b.state == HALF_OPEN
    assert not b.allow()  # everyone else keeps waiting on the probe
    b.record_success()
    assert b.state == CLOSED
    assert b.closes == 1
    assert b.allow()


def test_half_open_probe_failure_reopens(engine):
    b = make_breaker(engine)
    b.trip()
    advance(engine, 31.0)
    assert b.allow()
    b.record_failure()
    assert b.state == OPEN
    assert b.opens == 2
    assert b.probe_delay() == pytest.approx(30.0)  # a full fresh timeout


def test_probe_delay_zero_outside_open(engine):
    b = make_breaker(engine)
    assert b.probe_delay() == 0.0


# ----------------------------------------------------------------------
# Fault-bus cooperation
# ----------------------------------------------------------------------
def test_link_down_event_trips_immediately(engine):
    b = make_breaker(engine)
    engine.emit_fault("link.down", "NEU->NUS")
    assert b.state == OPEN  # no need to burn timeouts on a known-dead link


def test_unrelated_link_event_ignored(engine):
    b = make_breaker(engine)
    engine.emit_fault("link.down", "WEU->NUS")
    engine.emit_fault("link.down", "NUS->NEU")  # wrong direction
    assert b.state == CLOSED


def test_link_up_arms_immediate_probe(engine):
    b = make_breaker(engine)
    engine.emit_fault("link.down", "NEU->NUS")
    advance(engine, 5.0)  # well before the 30 s reset timeout
    engine.emit_fault("link.up", "NEU->NUS")
    assert b.probe_delay() == 0.0
    assert b.allow()  # probe admitted right away
    assert b.state == HALF_OPEN


def test_partition_target_parsing(engine):
    b = make_breaker(engine)
    engine.emit_fault("partition", "WEU,EUS|SEA")  # does not cover NEU->NUS
    assert b.state == CLOSED
    engine.emit_fault("partition", "NEU,WEU|NUS")
    assert b.state == OPEN
    engine.emit_fault("partition.heal", "NEU,WEU|NUS")
    assert b.probe_delay() == 0.0


def test_partition_covers_either_direction(engine):
    # The breaker's link is NEU->NUS; a partition listing NUS on the
    # left still severs it.
    b = make_breaker(engine)
    engine.emit_fault("partition", "NUS|NEU,WEU")
    assert b.state == OPEN
