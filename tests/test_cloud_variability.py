"""Unit + statistical tests for variability processes."""

import numpy as np
import pytest

from repro.cloud.variability import (
    Ar1LognormalProcess,
    CompositeProcess,
    ConstantProcess,
    DiurnalProcess,
    GlitchProcess,
    default_wan_process,
)
from repro.simulation.units import DAY, HOUR, MINUTE


def _rng(seed=0):
    return np.random.default_rng(seed)


def test_constant_process():
    assert ConstantProcess(1.3).factor(999.0) == 1.3
    with pytest.raises(ValueError):
        ConstantProcess(0.0)


def test_ar1_stationary_statistics():
    proc = Ar1LognormalProcess(_rng(1), sigma=0.2, phi=0.9, epoch=60.0)
    samples = np.array([proc.factor(i * 60.0) for i in range(20_000)])
    logs = np.log(samples)
    assert abs(logs.mean()) < 0.02
    assert logs.std() == pytest.approx(0.2, rel=0.15)


def test_ar1_is_correlated_in_time():
    proc = Ar1LognormalProcess(_rng(2), sigma=0.2, phi=0.95, epoch=60.0)
    xs = np.log([proc.factor(i * 60.0) for i in range(5000)])
    lag1 = np.corrcoef(xs[:-1], xs[1:])[0, 1]
    assert lag1 > 0.8  # strongly autocorrelated, unlike white noise


def test_ar1_constant_within_epoch():
    proc = Ar1LognormalProcess(_rng(3), sigma=0.3, epoch=60.0)
    assert proc.factor(10.0) == proc.factor(59.0)
    # A new epoch may change the factor; queries stay monotone in time.
    _ = proc.factor(61.0)
    assert proc.factor(119.0) == proc.factor(61.0)


def test_ar1_rejects_backwards_time():
    proc = Ar1LognormalProcess(_rng(4), epoch=60.0)
    proc.factor(600.0)
    with pytest.raises(ValueError, match="backwards"):
        proc.factor(0.0)


def test_ar1_zero_sigma_is_flat():
    proc = Ar1LognormalProcess(_rng(5), sigma=0.0)
    assert proc.factor(0.0) == pytest.approx(1.0)
    assert proc.factor(1e6) == pytest.approx(1.0)


@pytest.mark.parametrize("bad_kwargs", [
    {"phi": 1.0},
    {"phi": -0.1},
    {"sigma": -0.2},
    {"epoch": 0.0},
])
def test_ar1_validates_parameters(bad_kwargs):
    with pytest.raises(ValueError):
        Ar1LognormalProcess(_rng(0), **bad_kwargs)


def test_diurnal_deepest_at_peak_hour():
    proc = DiurnalProcess(amplitude=0.2, peak_hour=14.0)
    peak = proc.factor(14 * HOUR)
    off_peak = proc.factor(2 * HOUR)
    assert peak == pytest.approx(0.8, abs=1e-6)
    assert off_peak > peak
    # 12 hours from the peak is the fastest time of day.
    assert proc.factor(2 * HOUR) == pytest.approx(1.0, abs=1e-6)


def test_diurnal_period_is_daily():
    proc = DiurnalProcess(amplitude=0.15)
    assert proc.factor(5 * HOUR) == pytest.approx(proc.factor(5 * HOUR + DAY))


def test_glitch_rare_and_deep():
    proc = GlitchProcess(
        _rng(6), mean_interarrival=HOUR, mean_duration=2 * MINUTE, depth=0.3
    )
    samples = np.array([proc.factor(i * 10.0) for i in range(50_000)])
    frac_glitched = (samples < 1.0).mean()
    assert 0.005 < frac_glitched < 0.15
    assert set(np.unique(samples)) <= {0.3, 1.0}


def test_glitch_in_glitch_flag():
    proc = GlitchProcess(_rng(7), mean_interarrival=100.0, mean_duration=50.0)
    flags = [proc.in_glitch(t) for t in np.arange(0, 5000, 5.0)]
    assert any(flags) and not all(flags)


def test_composite_clips():
    lo_proc = ConstantProcess(0.001)
    comp = CompositeProcess([lo_proc], lo=0.05, hi=1.6)
    assert comp.factor(0.0) == 0.05
    hi_proc = ConstantProcess(10.0)
    assert CompositeProcess([hi_proc]).factor(0.0) == 1.6


def test_composite_multiplies():
    comp = CompositeProcess([ConstantProcess(0.8), ConstantProcess(0.9)])
    assert comp.factor(0.0) == pytest.approx(0.72)


def test_default_wan_process_statistics():
    proc = default_wan_process(_rng(8), sigma=0.2)
    samples = np.array([proc.factor(i * 60.0) for i in range(10_000)])
    assert 0.1 < samples.std() / samples.mean() < 0.5
    assert samples.min() >= 0.05
    assert samples.max() <= 1.6
