"""Stage profiler, flight recorder, bench records, dashboard rendering."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import FlightRecorder, Observer, StageProfiler, read_flight_jsonl
from repro.obs.bench import BenchRecord, config_digest, read_bench, write_bench
from repro.obs.dashboard import render_dashboard
from repro.obs.profile import NULL_METER, NULL_STAGE_TIMER


# ----------------------------------------------------------------------
# StageProfiler
# ----------------------------------------------------------------------
def test_timer_handles_are_cached():
    prof = StageProfiler()
    assert prof.timer("a") is prof.timer("a")
    assert prof.meter("m") is prof.meter("m")
    assert prof.timer("a") is not prof.timer("b")


def test_nested_stages_attribute_exclusive_time():
    """Entering a nested stage pauses the parent: self-times are disjoint."""
    prof = StageProfiler()
    with prof.timer("outer"):
        with prof.timer("inner"):
            for _ in range(20000):
                pass
    stages = prof.stages()
    assert stages["outer"].calls == 1
    assert stages["inner"].calls == 1
    # Exclusive attribution: the sum of self-times equals the profiled
    # wall window (single outermost stage) to within float noise.
    accounted = prof.accounted_seconds()
    assert math.isclose(accounted, prof.wall_seconds, rel_tol=1e-6)
    # The busy loop ran inside "inner", so it must dominate.
    assert stages["inner"].seconds > stages["outer"].seconds


def test_shares_sum_to_one_and_sort_by_self_time():
    prof = StageProfiler()
    with prof.timer("a"):
        with prof.timer("b"):
            for _ in range(50000):
                pass
        with prof.timer("c"):
            pass
    snap = prof.snapshot()
    shares = [s["share"] for s in snap["stages"].values()]
    assert math.isclose(sum(shares), 1.0, abs_tol=1e-9)
    assert list(snap["stages"]) == sorted(
        snap["stages"], key=lambda n: -snap["stages"][n]["seconds"]
    )
    assert next(iter(snap["stages"])) == "b"


def test_virtual_window_tracks_bound_clock():
    now = {"t": 0.0}
    prof = StageProfiler(clock=lambda: now["t"])
    with prof.timer("loop"):
        now["t"] = 120.0  # the outermost stage advanced virtual time
    assert prof.virtual_seconds == pytest.approx(120.0)
    snap = prof.snapshot()
    assert snap["virtual_seconds"] == pytest.approx(120.0)


def test_meter_rates_against_external_wall():
    prof = StageProfiler()
    prof.meter("records").mark(500)
    prof.meter("records").mark(500)
    snap = prof.snapshot(wall_seconds=2.0)
    m = snap["meters"]["records"]
    assert m["count"] == 1000
    assert m["per_wall_s"] == pytest.approx(500.0)


def test_coverage_against_external_wall():
    prof = StageProfiler()
    with prof.timer("only"):
        for _ in range(10000):
            pass
    wall = prof.wall_seconds / 0.5  # pretend half the run was unprofiled
    snap = prof.snapshot(wall_seconds=wall)
    assert snap["coverage"] == pytest.approx(0.5, rel=1e-6)


def test_reset_zeroes_but_keeps_handles_valid():
    prof = StageProfiler()
    timer = prof.timer("t")
    meter = prof.meter("m")
    with timer:
        meter.mark(5)
    prof.reset()
    assert prof.accounted_seconds() == 0.0
    assert prof.wall_seconds == 0.0
    with timer:  # the cached handle still attributes after reset
        meter.mark(2)
    assert prof.stages()["t"].calls == 1
    assert prof.meters()["m"].count == 2


def test_null_handles_are_shared_and_inert():
    with NULL_STAGE_TIMER:
        NULL_METER.mark(100)
    assert NULL_METER.count == 0.0


# ----------------------------------------------------------------------
# FlightRecorder
# ----------------------------------------------------------------------
def test_ring_keeps_only_the_last_capacity_entries():
    rec = FlightRecorder(capacity=3)
    for i in range(10):
        rec.record("event", seq=i)
    assert len(rec) == 3
    assert rec.recorded == 10  # total ever recorded survives eviction
    assert [e["seq"] for e in rec.events] == [7, 8, 9]


def test_entries_are_stamped_with_the_bound_clock():
    now = {"t": 5.0}
    rec = FlightRecorder(clock=lambda: now["t"])
    rec.record("a")
    now["t"] = 7.5
    rec.record("b")
    assert [e["t"] for e in rec.events] == [5.0, 7.5]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_dump_round_trips_and_stringifies_unserialisable(tmp_path):
    rec = FlightRecorder(capacity=8)
    rec.record("fault", fault="vm_crash", target=("NEU", 0))
    rec.record("event", payload=object())  # no JSON encoder
    path = tmp_path / "flight.jsonl"
    assert rec.dump(str(path)) == 2
    entries = read_flight_jsonl(str(path))
    assert [e["kind"] for e in entries] == ["fault", "event"]
    assert entries[0]["fault"] == "vm_crash"
    assert isinstance(entries[1]["payload"], str)  # stringified, not lost
    # Every line is independently valid JSON (post-mortem greppability).
    for line in path.read_text().splitlines():
        json.loads(line)


def test_clear_empties_ring_but_not_total():
    rec = FlightRecorder(capacity=4)
    rec.record("x")
    rec.clear()
    assert len(rec) == 0
    assert rec.recorded == 1


# ----------------------------------------------------------------------
# BenchRecord
# ----------------------------------------------------------------------
def _profile_fixture():
    prof = StageProfiler()
    with prof.timer("sim.dispatch"):
        with prof.timer("site.drain"):
            pass
    prof.meter("records").mark(1000)
    prof.meter("events").mark(100)
    return prof.snapshot(wall_seconds=2.0)


def test_bench_record_round_trip(tmp_path):
    profile = _profile_fixture()
    record = BenchRecord.from_profile(
        "unit", "scenario-x", 7, profile,
        config={"duration": 60.0}, records=1000, events=100,
        extras={"p95_s": 1.5},
    )
    path = write_bench(record, tmp_path)
    assert path.name == "BENCH_unit.json"
    data = read_bench(path)
    assert data["scenario"] == "scenario-x"
    assert data["records_per_s"] == pytest.approx(500.0)
    assert data["events_per_s"] == pytest.approx(50.0)
    assert data["config_digest"] == config_digest({"duration": 60.0})
    assert math.isclose(sum(data["stage_shares"].values()), 1.0, abs_tol=1e-3)
    assert data["extras"]["p95_s"] == 1.5


def test_read_bench_rejects_missing_keys(tmp_path):
    path = tmp_path / "BENCH_bad.json"
    path.write_text(json.dumps({"bench": "bad"}))
    with pytest.raises(ValueError, match="missing bench keys"):
        read_bench(path)


def test_read_bench_rejects_broken_share_sum(tmp_path):
    profile = _profile_fixture()
    record = BenchRecord.from_profile("broken", "s", 1, profile)
    data = record.to_dict()
    data["stage_shares"] = {"sim.dispatch": 0.4}  # sums to 0.4
    path = tmp_path / "BENCH_broken.json"
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError, match="stage shares sum"):
        read_bench(path)


def test_bench_record_lineage_ledger_fields_round_trip(tmp_path):
    profile = _profile_fixture()
    record = BenchRecord.from_profile(
        "lin", "s", 1, profile,
        e2e_latency_p99_s=21.5, usd_per_1k_records=0.00123456789,
    )
    path = write_bench(record, tmp_path)
    data = read_bench(path)
    assert data["e2e_latency_p99_s"] == pytest.approx(21.5)
    assert data["usd_per_1k_records"] == pytest.approx(0.00123456789)
    # Omitted by default: older trajectory records stay byte-compatible.
    bare = BenchRecord.from_profile("old", "s", 1, _profile_fixture())
    bare_data = bare.to_dict()
    assert "e2e_latency_p99_s" not in bare_data
    assert "usd_per_1k_records" not in bare_data
    bare_path = write_bench(bare, tmp_path)
    read_bench(bare_path)  # validates without the optional keys


@pytest.mark.parametrize("key", ["e2e_latency_p99_s", "usd_per_1k_records"])
@pytest.mark.parametrize("bad", [-0.5, float("nan"), "fast", True])
def test_read_bench_rejects_bad_lineage_fields(tmp_path, key, bad):
    data = BenchRecord.from_profile("bad", "s", 1, _profile_fixture()).to_dict()
    data[key] = bad
    path = tmp_path / "BENCH_bad.json"
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError, match=key):
        read_bench(path)


def test_read_bench_accepts_explicit_null_lineage_fields(tmp_path):
    data = BenchRecord.from_profile("ok", "s", 1, _profile_fixture()).to_dict()
    data["e2e_latency_p99_s"] = None
    path = tmp_path / "BENCH_ok.json"
    path.write_text(json.dumps(data))
    assert read_bench(path)["e2e_latency_p99_s"] is None


def test_config_digest_is_order_insensitive():
    assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})
    assert config_digest({"a": 1}) != config_digest({"a": 2})


# ----------------------------------------------------------------------
# Dashboard
# ----------------------------------------------------------------------
def test_render_dashboard_surfaces_stages_meters_gauges():
    obs = Observer()
    with obs.stage("sim.dispatch"):
        with obs.stage("site.drain"):
            pass
    obs.meter("records").mark(42)
    obs.gauge("stream_backlog_depth", site="NEU").set(17)
    obs.gauge("flow_breaker_state", site="NEU").set(2.0)
    text = render_dashboard(obs, title="unit perf")
    assert "unit perf" in text
    assert "sim.dispatch" in text and "site.drain" in text
    assert "records" in text
    assert 'stream_backlog_depth{site="NEU"}' in text
    assert "open" in text  # breaker state decoded, not a bare 2.0


def test_render_dashboard_disabled_observer():
    from repro.obs import NULL_OBSERVER

    text = render_dashboard(NULL_OBSERVER)
    assert "disabled" in text


def test_render_dashboard_empty_observer_has_placeholders():
    text = render_dashboard(Observer())
    assert "no stages profiled" in text
    assert "no meters recorded" in text
    assert "no gauges recorded" in text
