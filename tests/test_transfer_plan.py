"""Unit tests for transfer plans and route assignments."""

import pytest

from repro.cloud.vm import VM, VM_SIZES
from repro.transfer.plan import RouteAssignment, TransferPlan


def vm(vm_id, region):
    return VM(vm_id, region, VM_SIZES["Small"])


@pytest.fixture
def vms():
    return {
        "s": vm("s", "NEU"),
        "h1": vm("h1", "NEU"),
        "h2": vm("h2", "NEU"),
        "r": vm("r", "EUS"),
        "d": vm("d", "NUS"),
        "d2": vm("d2", "NUS"),
    }


def test_route_validation(vms):
    with pytest.raises(ValueError):
        RouteAssignment([vms["s"]])
    with pytest.raises(ValueError):
        RouteAssignment([vms["s"], vms["d"]], weight=0.0)
    with pytest.raises(ValueError):
        RouteAssignment([vms["s"], vms["d"]], streams=0)
    with pytest.raises(ValueError):
        RouteAssignment([vms["s"], vms["d"]], intrusiveness=1.5)


def test_route_wan_hops_and_describe(vms):
    r = RouteAssignment([vms["s"], vms["r"], vms["d"]])
    assert r.wan_hop_count() == 2
    assert r.describe() == "NEU->EUS->NUS"
    helper = RouteAssignment([vms["s"], vms["h1"], vms["d"]])
    assert helper.wan_hop_count() == 1


def test_plan_requires_consistent_endpoints(vms):
    with pytest.raises(ValueError, match="same region"):
        TransferPlan(
            [
                RouteAssignment([vms["s"], vms["d"]]),
                RouteAssignment([vms["s"], vms["r"]]),
            ]
        )
    with pytest.raises(ValueError):
        TransferPlan([])


def test_plan_shares_proportional_to_weight(vms):
    plan = TransferPlan(
        [
            RouteAssignment([vms["s"], vms["d"]], weight=3.0),
            RouteAssignment([vms["s"], vms["h1"], vms["d"]], weight=1.0),
        ]
    )
    shares = plan.shares(100.0)
    assert shares == [pytest.approx(75.0), pytest.approx(25.0)]
    assert sum(shares) == pytest.approx(100.0)


def test_plan_vm_count_distinct(vms):
    plan = TransferPlan(
        [
            RouteAssignment([vms["s"], vms["d"]]),
            RouteAssignment([vms["s"], vms["h1"], vms["d"]]),
        ]
    )
    assert plan.vm_count() == 3  # s, d, h1


def test_direct_factory(vms):
    plan = TransferPlan.direct(vms["s"], vms["d"], streams=2)
    assert len(plan.routes) == 1
    assert plan.routes[0].streams == 2


def test_parallel_factory(vms):
    plan = TransferPlan.parallel(vms["s"], [vms["h1"], vms["h2"]], vms["d"])
    assert len(plan.routes) == 3
    assert plan.routes[1].path == [vms["s"], vms["h1"], vms["d"]]


def test_parallel_factory_rejects_remote_helper(vms):
    with pytest.raises(ValueError, match="source region"):
        TransferPlan.parallel(vms["s"], [vms["r"]], vms["d"])
