"""Generated adversity programs and the correlated-outage builder."""

import numpy as np
import pytest

from repro.faults.plan import FaultKind, FaultPlan
from repro.gen.adversity import (
    batch_window,
    event_count,
    link_flap,
    regional_outage,
    slow_burn,
)


def rng(seed=13):
    return np.random.Generator(np.random.PCG64(seed))


# ----------------------------------------------------------------------
# Regional outage
# ----------------------------------------------------------------------
def test_regional_outage_covers_vms_and_both_link_directions():
    plan = FaultPlan()
    vms = ["vm-0001-neu", "vm-0002-neu", "vm-0003-neu"]
    regional_outage(
        plan, rng(), 100.0, "NEU", vms, ["WUS", "NUS"], 60.0, 5.0
    )
    crashes = [e for e in plan if e.kind == FaultKind.VM_CRASH]
    downs = [e for e in plan if e.kind == FaultKind.LINK_DOWN]
    assert {e.target for e in crashes} == set(vms)
    # Both directions to every peer: nothing routes around the dead
    # region through a half-open pair.
    assert {e.target for e in downs} == {
        "NEU->WUS", "WUS->NEU", "NEU->NUS", "NUS->NEU"
    }
    # Everything lands inside the jittered window, correlated like one
    # zonal incident.
    starts = [e.time for e in crashes + downs]
    assert all(100.0 <= t <= 105.0 for t in starts)
    restores = [e for e in plan if e.kind in (FaultKind.VM_RESTART, FaultKind.LINK_UP)]
    assert all(160.0 <= e.time <= 170.0 for e in restores)


def test_regional_outage_validates():
    with pytest.raises(ValueError, match="outage_s"):
        regional_outage(FaultPlan(), rng(), 0.0, "NEU", [], [], 0.0, 1.0)
    with pytest.raises(ValueError, match="jitter_s"):
        regional_outage(FaultPlan(), rng(), 0.0, "NEU", [], [], 10.0, -1.0)


def test_regional_outage_skips_self_peer():
    plan = regional_outage(
        FaultPlan(), rng(), 0.0, "NEU", [], ["NEU", "NUS"], 30.0, 0.0
    )
    targets = {e.target for e in plan if e.kind == FaultKind.LINK_DOWN}
    assert targets == {"NEU->NUS", "NUS->NEU"}


# ----------------------------------------------------------------------
# Slow burn
# ----------------------------------------------------------------------
def test_slow_burn_staircase_descends_and_never_overlaps():
    plan = slow_burn(FaultPlan(), rng(), 50.0, ("NEU", "WUS"), 600.0, 0.4)
    flaps = [e for e in plan if e.kind == FaultKind.LINK_FLAP]
    assert len(flaps) == 6
    scales = [e.param2 for e in flaps]
    assert scales == sorted(scales, reverse=True)
    assert scales[-1] == pytest.approx(0.4)
    # Each step's restore fires strictly before the next step applies —
    # the injector's un-flap resets to 1.0 and would otherwise cancel it.
    for a, b in zip(flaps, flaps[1:]):
        assert a.time + a.param < b.time


def test_slow_burn_validates():
    with pytest.raises(ValueError, match="steps"):
        slow_burn(FaultPlan(), rng(), 0.0, ("A", "B"), 100.0, 0.5, steps=1)
    with pytest.raises(ValueError, match="ramp_s"):
        slow_burn(FaultPlan(), rng(), 0.0, ("A", "B"), 0.0, 0.5)


# ----------------------------------------------------------------------
# Flaps, batch windows, event counts
# ----------------------------------------------------------------------
def test_link_flap_samples_within_bounds():
    plan = link_flap(FaultPlan(), rng(), 10.0, ("NEU", "WUS"), 0.1, 0.5, 60.0)
    (flap,) = list(plan)
    assert flap.kind == FaultKind.LINK_FLAP
    assert 0.1 <= flap.param2 <= 0.5
    assert flap.param >= 10.0  # duration floor


def test_batch_window_kinds():
    dup = batch_window(FaultPlan(), rng(), 5.0, "dup", 30.0)
    drop = batch_window(FaultPlan(), rng(), 5.0, "drop", 30.0)
    assert list(dup)[0].kind == FaultKind.BATCH_DUP
    assert list(drop)[0].kind == FaultKind.BATCH_DROP
    with pytest.raises(ValueError, match="kind"):
        batch_window(FaultPlan(), rng(), 5.0, "mangle", 30.0)


def test_event_count_scales_with_rate_and_horizon():
    assert event_count(rng(), 0.0, 48.0) == 0
    assert event_count(rng(), 4.0, 0.0) == 0
    counts = [event_count(rng(i), 4.0, 48.0) for i in range(50)]
    assert np.mean(counts) == pytest.approx(8.0, rel=0.4)


def test_plan_horizon_spans_windowed_faults():
    plan = FaultPlan()
    plan.crash_vm(10.0, "vm-1", restart_after=100.0)
    assert plan.horizon() == 110.0
    plan.flap_link(200.0, "NEU", "WUS", 0.5, 50.0)
    assert plan.horizon() == 250.0
    counts = plan.counts_by_kind()
    assert counts[FaultKind.VM_CRASH] == 1
    assert counts[FaultKind.LINK_FLAP] == 1
