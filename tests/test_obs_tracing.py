"""Tests for tracing: span lifecycle, nesting, and JSONL round-trip."""

import pytest

from repro.obs import NULL_SPAN, NullTracer, Observer, Tracer
from repro.obs.exporters import (
    export_trace_jsonl,
    read_trace_jsonl,
    trace_summary,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


# ----------------------------------------------------------------------
# Span lifecycle
# ----------------------------------------------------------------------
def test_detached_span_duration_uses_bound_clock():
    clock = FakeClock()
    tracer = Tracer(clock)
    span = tracer.start_span("ship.batch", bytes=100)
    clock.t = 4.5
    span.finish(bps=22.2)
    assert span.duration == 4.5
    assert span.attrs == {"bytes": 100, "bps": 22.2}
    assert tracer.find("ship.batch") == [span]


def test_record_span_is_retroactive():
    tracer = Tracer()
    span = tracer.record_span("window", 10.0, 12.5, key="NEU")
    assert span.finished
    assert span.duration == 2.5
    assert len(tracer) == 1


def test_unfinished_span_has_no_duration():
    tracer = Tracer()
    span = tracer.start_span("open")
    with pytest.raises(ValueError):
        span.duration


def test_context_manager_nesting():
    clock = FakeClock()
    tracer = Tracer(clock)
    with tracer.span("outer") as outer:
        clock.t = 1.0
        with tracer.span("inner") as inner:
            clock.t = 2.0
        with tracer.span("sibling") as sibling:
            clock.t = 3.0
    assert outer.parent_id is None
    assert inner.parent_id == outer.span_id
    assert sibling.parent_id == outer.span_id
    assert inner.duration == 1.0
    assert outer.duration == 3.0
    # Children finish before the parent.
    assert tracer.spans.index(inner) < tracer.spans.index(outer)


def test_explicit_parent_for_detached_spans():
    tracer = Tracer()
    parent = tracer.start_span("transfer")
    child = tracer.start_span("replan", parent=parent)
    assert child.parent_id == parent.span_id


# ----------------------------------------------------------------------
# JSONL round-trip
# ----------------------------------------------------------------------
def test_jsonl_round_trip(tmp_path):
    clock = FakeClock()
    obs = Observer(clock)
    with obs.span("outer", kind="t"):
        clock.t = 2.0
        with obs.span("inner"):
            clock.t = 3.5
    obs.record_span("window", 0.5, 1.5, key="k", sites=2)

    path = tmp_path / "trace.jsonl"
    n = export_trace_jsonl(obs.tracer, str(path))
    assert n == 3
    back = read_trace_jsonl(str(path))
    assert len(back) == 3
    # Sorted by start time: window (0.5) precedes outer (0.0)? No —
    # outer starts at 0.0, window at 0.5, inner at 2.0.
    assert [s["name"] for s in back] == ["outer", "window", "inner"]
    by_name = {s["name"]: s for s in back}
    assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
    assert by_name["window"]["attrs"] == {"key": "k", "sites": 2}
    assert by_name["window"]["end"] - by_name["window"]["start"] == 1.0
    # Field-level fidelity against the in-memory spans.
    originals = {s.name: s.to_dict() for s in obs.tracer.spans}
    for s in back:
        assert originals[s["name"]] == s


def test_trace_summary_rolls_up_by_name():
    tracer = Tracer()
    for i in range(3):
        tracer.record_span("ship.batch", 0.0, float(i + 1))
    tracer.record_span("window", 0.0, 10.0)
    text = trace_summary(tracer)
    assert "ship.batch" in text and "window" in text
    assert trace_summary(Tracer()).endswith("(no spans recorded)")


# ----------------------------------------------------------------------
# Null path
# ----------------------------------------------------------------------
def test_null_tracer_records_nothing():
    tracer = NullTracer()
    assert tracer.span("a") is NULL_SPAN
    assert tracer.start_span("b") is NULL_SPAN
    assert tracer.record_span("c", 0.0, 1.0) is NULL_SPAN
    with tracer.span("ctx"):
        pass
    NULL_SPAN.finish(x=1)
    assert len(tracer) == 0
    assert NULL_SPAN.attrs == {}
