"""Edge cases across modules that the main suites do not reach."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.deployment import CloudEnvironment
from repro.cloud.network import Flow
from repro.cloud.vm import VM, VM_SIZES
from repro.monitor.linkmap import LinkPerformanceMap
from repro.monitor.estimators import make_estimator
from repro.simulation.units import MB
from repro.transfer.plan import RouteAssignment, TransferPlan
from repro.transfer.service import TransferService


def vm(vm_id, region):
    return VM(vm_id, region, VM_SIZES["Small"])


# ----------------------------------------------------------------------
# Link map
# ----------------------------------------------------------------------
def test_linkmap_unknown_link_estimate():
    lm = LinkPerformanceMap()
    est = lm.estimate("A", "B")
    assert not est.known
    assert lm.throughput("A", "B") != lm.throughput("A", "B")  # NaN
    assert lm.throughput("A", "B", default=5.0) == 5.0
    with pytest.raises(KeyError, match="not monitored"):
        lm.observe("A", "B", 0.0, 1.0)


def test_linkmap_default_applies_when_unknown():
    lm = LinkPerformanceMap()
    lm.register("A", "B", make_estimator("WSI"))
    assert lm.throughput("A", "B", default=7.0) == 7.0  # registered, no data
    lm.observe("A", "B", 0.0, 3.0)
    assert lm.throughput("A", "B", default=7.0) == 3.0


def test_linkmap_matrix_marks_unknown():
    lm = LinkPerformanceMap()
    lm.register("A", "B", make_estimator("WSI"))
    lm.register("B", "A", make_estimator("WSI"))
    lm.observe("A", "B", 0.0, 2 * MB)
    rows = lm.matrix_rows()
    flat = " ".join(" ".join(r) for r in rows)
    assert "?" in flat  # B->A never sampled
    assert "2.0" in flat


# ----------------------------------------------------------------------
# Flow bookkeeping
# ----------------------------------------------------------------------
def test_flow_stats_before_start():
    f = Flow([vm("a", "NEU"), vm("b", "NUS")], 10 * MB)
    assert f.elapsed(100.0) == 0.0
    assert f.mean_throughput(100.0) == 0.0
    assert not f.done
    assert f.remaining == 10 * MB


def test_flow_wan_hops_for_helper_route():
    route = [vm("a", "NEU"), vm("h", "NEU"), vm("b", "NUS")]
    f = Flow(route, 1.0)
    assert f.wan_hops() == [("NEU", "NUS")]
    assert len(f.hops()) == 2


# ----------------------------------------------------------------------
# Transfer service conveniences
# ----------------------------------------------------------------------
def test_service_direct_and_uncharged():
    env = CloudEnvironment(seed=9, variability_sigma=0.0, glitches=False)
    src = env.provision("NEU", "Small")[0]
    dst = env.provision("NUS", "Small")[0]
    service = TransferService(env)
    before = env.meter.snapshot()
    done = []
    service.execute(
        TransferPlan.direct(src, dst, streams=4),
        20 * MB,
        on_complete=lambda s: done.append(s),
        charge=False,
    )
    env.sim.run_until(10_000)
    assert done
    spent = env.meter.snapshot() - before
    assert spent.egress_usd == 0.0  # uncharged experiment traffic

    service.direct(src, dst, 20 * MB, streams=4)
    env.sim.run_until(env.now + 10_000)
    assert env.meter.egress_usd > 0  # the charged path bills


# ----------------------------------------------------------------------
# Plan share properties
# ----------------------------------------------------------------------
@given(
    st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=8),
    st.floats(min_value=1.0, max_value=1e9),
)
@settings(max_examples=80, deadline=None)
def test_property_plan_shares_partition_and_proportional(weights, total):
    src = vm("src", "NEU")
    dst = vm("dst", "NUS")
    routes = [
        RouteAssignment([vm(f"h{i}", "NEU"), dst] if i else [src, dst],
                        weight=w)
        for i, w in enumerate(weights)
    ]
    plan = TransferPlan(routes)
    shares = plan.shares(total)
    assert sum(shares) == pytest.approx(total, rel=1e-9)
    assert all(s >= 0 for s in shares)
    wsum = sum(weights)
    for share, w in zip(shares, weights):
        assert share == pytest.approx(total * w / wsum, rel=1e-9)


# ----------------------------------------------------------------------
# Environment knobs
# ----------------------------------------------------------------------
def test_capacity_scale_knob():
    lo = CloudEnvironment(seed=1, capacity_scale=0.5,
                          variability_sigma=0.0, glitches=False)
    hi = CloudEnvironment(seed=1, capacity_scale=2.0,
                          variability_sigma=0.0, glitches=False)
    assert hi.topology.link("NEU", "NUS").base_capacity == pytest.approx(
        4 * lo.topology.link("NEU", "NUS").base_capacity
    )


def test_billed_vm_time_mode():
    env = CloudEnvironment(seed=2, billed_vm_time=True,
                           variability_sigma=0.0, glitches=False)
    vm_ = env.provision("NEU", "Small")[0]
    env.sim.run_until(60.0)  # one minute of lease
    usd = env.release(vm_)
    assert usd == pytest.approx(0.06)  # rounded up to the billing hour
