"""Unit tests for the blob storage model."""

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.simulation.units import MB


@pytest.fixture
def env():
    return CloudEnvironment(
        seed=5, variability_sigma=0.0, diurnal_amplitude=0.0, glitches=False
    )


def put_blocking(env, store, client, name, size):
    done = []
    store.put(client, name, size, on_done=lambda obj: done.append(env.now))
    env.sim.run_until(env.now + 10_000)
    assert done
    return done[0]


def get_blocking(env, store, client, name):
    done = []
    store.get(client, name, on_done=lambda obj: done.append(env.now))
    env.sim.run_until(env.now + 10_000)
    assert done
    return done[0]


def test_put_then_get_roundtrip(env):
    vm = env.provision("NEU", "Small")[0]
    store = env.blob("NEU")
    put_blocking(env, store, vm, "obj", 10 * MB)
    assert store.exists("obj")
    get_blocking(env, store, vm, "obj")
    assert store.puts == 1 and store.gets == 1


def test_get_missing_object_raises(env):
    vm = env.provision("NEU", "Small")[0]
    with pytest.raises(KeyError, match="no object"):
        env.blob("NEU").get(vm, "missing")


def test_put_rejects_empty(env):
    vm = env.provision("NEU", "Small")[0]
    with pytest.raises(ValueError):
        env.blob("NEU").put(vm, "x", 0.0)


def test_per_op_rate_cap_binds(env):
    # A Large VM's NIC (50 MB/s) exceeds the per-op cap, so the cap binds.
    vm = env.provision("NEU", "Large")[0]
    store = env.blob("NEU")
    t0 = env.now
    t = put_blocking(env, store, vm, "big", 60 * MB)
    achieved = 60 * MB / (t - t0)
    assert achieved <= store.per_op_rate_cap * 1.01
    assert achieved == pytest.approx(store.per_op_rate_cap, rel=0.05)


def test_remote_put_slower_than_local(env):
    vm = env.provision("NEU", "Small")[0]
    local = put_blocking(env, env.blob("NEU"), vm, "l", 20 * MB) - 0.0
    start = env.now
    remote = put_blocking(env, env.blob("NUS"), vm, "r", 20 * MB) - start
    assert remote > local


def test_transactions_and_egress_charged(env):
    vm = env.provision("NEU", "Small")[0]
    store = env.blob("NUS")  # remote store: PUT pays egress
    before = env.meter.snapshot()
    put_blocking(env, store, vm, "o", 10 * MB)
    spent = env.meter.snapshot() - before
    assert spent.transactions == 1
    assert spent.egress_usd > 0


def test_local_put_no_egress(env):
    vm = env.provision("NEU", "Small")[0]
    before = env.meter.snapshot()
    put_blocking(env, env.blob("NEU"), vm, "o", 10 * MB)
    spent = env.meter.snapshot() - before
    assert spent.egress_usd == 0.0
    assert spent.transactions == 1


def test_delete_and_capacity_charges(env):
    vm = env.provision("NEU", "Small")[0]
    store = env.blob("NEU")
    put_blocking(env, store, vm, "o", 100 * MB)
    before = env.meter.snapshot()
    store.charge_capacity(3600.0)
    assert env.meter.snapshot().storage_usd > before.storage_usd
    store.delete("o")
    assert not store.exists("o")
    store.delete("o")  # idempotent
