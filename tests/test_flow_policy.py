"""Unit tests for overload policies and the credit gate."""

from collections import deque

import numpy as np
import pytest

from repro.flow.credits import CreditGate
from repro.flow.policy import (
    BlockPolicy,
    DegradePolicy,
    FlowConfig,
    ShedPolicy,
    make_policy,
)


class _Shipping:
    saturated = False


class FakeSite:
    """The minimal SiteRuntime surface a policy touches."""

    def __init__(self, max_backlog=10):
        self._backlog = deque()
        self.credits = CreditGate(max_backlog)
        self.shipping = _Shipping()
        self.records_shed = 0
        self.blocked_ticks = 0
        self.degraded_ticks = 0
        self.degrade_transitions = 0
        self.flow_rng = np.random.default_rng(7)

    def count_shed(self, n):
        self.records_shed += n

    def count_blocked_tick(self):
        self.blocked_ticks += 1

    def count_degraded_tick(self):
        self.degraded_ticks += 1

    def count_degrade(self, active):
        self.degrade_transitions += 1


# ----------------------------------------------------------------------
# FlowConfig
# ----------------------------------------------------------------------
def test_flow_config_defaults_valid():
    cfg = FlowConfig()
    assert cfg.policy == "block"
    assert cfg.max_backlog == 50_000


@pytest.mark.parametrize(
    "kwargs",
    [
        {"policy": "panic"},
        {"max_backlog": 0},
        {"shed_mode": "newest"},
        {"degrade_factor": 1},
        {"resume_ratio": 0.0},
        {"resume_ratio": 1.5},
        {"breaker_threshold": 0},
        {"breaker_reset": 0.0},
    ],
)
def test_flow_config_validation(kwargs):
    with pytest.raises(ValueError):
        FlowConfig(**kwargs)


def test_make_policy_dispatch():
    assert isinstance(make_policy(FlowConfig(policy="block")), BlockPolicy)
    assert isinstance(make_policy(FlowConfig(policy="shed")), ShedPolicy)
    assert isinstance(make_policy(FlowConfig(policy="degrade")), DegradePolicy)


# ----------------------------------------------------------------------
# CreditGate
# ----------------------------------------------------------------------
def test_credit_gate_bounded():
    gate = CreditGate(5)
    assert gate.acquire(3) == 3
    assert gate.in_use == 3 and gate.available == 2
    assert gate.acquire(4) == 2  # only the remainder is granted
    assert gate.exhausted
    assert gate.denied == 2
    assert gate.acquire(1) == 0
    gate.release(4)
    assert gate.available == 4 and not gate.exhausted


def test_credit_gate_release_clamps_at_zero():
    gate = CreditGate(5)
    gate.acquire(2)
    gate.release(10)
    assert gate.in_use == 0
    assert gate.available == 5


def test_credit_gate_unlimited():
    gate = CreditGate(None)
    assert gate.acquire(10**6) == 10**6
    assert gate.available is None
    assert not gate.exhausted
    assert gate.denied == 0


def test_credit_gate_validation():
    with pytest.raises(ValueError):
        CreditGate(0)
    gate = CreditGate(5)
    with pytest.raises(ValueError):
        gate.acquire(-1)
    with pytest.raises(ValueError):
        gate.release(-1)


# ----------------------------------------------------------------------
# BlockPolicy
# ----------------------------------------------------------------------
def test_block_admits_only_free_credits():
    site = FakeSite(max_backlog=10)
    policy = make_policy(FlowConfig(policy="block", max_backlog=10))
    assert policy.admit(site, list(range(6))) == 6
    assert policy.admit(site, list(range(6))) == 4  # only 4 credits left
    assert list(site._backlog) == [0, 1, 2, 3, 4, 5, 0, 1, 2, 3]
    assert policy.admit(site, [99]) == 0  # full: nothing admitted
    assert site.records_shed == 0  # block never sheds


def test_block_stalls_drain_when_shipping_saturated():
    site = FakeSite()
    policy = make_policy(FlowConfig(policy="block"))
    assert policy.drain_budget(site, 100) == 100
    site.shipping.saturated = True
    assert policy.drain_budget(site, 100) == 0
    assert site.blocked_ticks == 1


# ----------------------------------------------------------------------
# ShedPolicy
# ----------------------------------------------------------------------
def test_shed_drops_oldest_and_counts():
    site = FakeSite(max_backlog=5)
    policy = make_policy(FlowConfig(policy="shed", max_backlog=5))
    assert policy.admit(site, list(range(8))) == 8  # source sees full accept
    assert list(site._backlog) == [3, 4, 5, 6, 7]  # oldest trimmed
    assert site.records_shed == 3


def test_shed_sample_mode_thins_arrivals_when_full():
    site = FakeSite(max_backlog=10)
    policy = make_policy(
        FlowConfig(policy="shed", max_backlog=10, shed_mode="sample")
    )
    policy.admit(site, list(range(10)))  # exactly fills the buffer
    assert site.records_shed == 0
    policy.admit(site, list(range(200)))
    # p=0.5 sampling keeps roughly half; the trim sheds whatever the
    # sampling kept — either way every lost record is counted.
    assert len(site._backlog) == 10
    assert site.records_shed == 200


# ----------------------------------------------------------------------
# DegradePolicy
# ----------------------------------------------------------------------
def test_degrade_hysteresis_and_budget():
    cfg = FlowConfig(
        policy="degrade", max_backlog=10, degrade_factor=4, resume_ratio=0.5
    )
    site = FakeSite()
    policy = make_policy(cfg)
    site._backlog.extend(range(11))  # above the bound
    assert policy.drain_budget(site, 10) == 40  # coarse mode: 4x budget
    assert policy.active
    assert site.degraded_ticks == 1
    site._backlog.clear()
    site._backlog.extend(range(6))  # above resume point (5): stays coarse
    assert policy.drain_budget(site, 10) == 40
    site._backlog.clear()
    site._backlog.extend(range(4))  # below resume point: back to normal
    assert policy.drain_budget(site, 10) == 10
    assert not policy.active
    assert site.degrade_transitions == 2


def test_degrade_trims_at_twice_the_bound():
    cfg = FlowConfig(policy="degrade", max_backlog=10)
    site = FakeSite()
    policy = make_policy(cfg)
    assert policy.admit(site, list(range(50))) == 50
    assert len(site._backlog) == 20  # 2x bound, last resort
    assert site.records_shed == 30


def test_degrade_coarsens_flush_cadence():
    cfg = FlowConfig(policy="degrade", max_backlog=10, degrade_factor=4)
    site = FakeSite()
    policy = make_policy(cfg)
    # Inactive: every tick may flush.
    assert all(policy.flush_allowed(site) for _ in range(4))
    site._backlog.extend(range(11))
    policy.drain_budget(site, 1)  # enters coarse mode
    allowed = [policy.flush_allowed(site) for _ in range(8)]
    assert allowed.count(True) == 2  # every 4th tick only
