"""The scripted overload-recovery scenario, per-policy contracts.

Each scenario run stacks a 5x ingest burst, a mid-burst WAN blackout,
and an aggregator crash/restart on the same deterministic workload; the
tests assert the overload contract of every policy end to end. They are
marked ``overload`` (like ``chaos``) so CI can run them in a dedicated
step.
"""

import pytest

from repro.flow import run_overload

pytestmark = pytest.mark.overload

SEED = 2013


@pytest.fixture(scope="module")
def block_result():
    return run_overload(policy="block", seed=SEED)


@pytest.fixture(scope="module")
def shed_result():
    return run_overload(policy="shed", seed=SEED)


def test_block_loses_nothing_and_bounds_the_buffer(block_result):
    r = block_result
    assert r.clean
    assert r.lost == 0
    assert r.shed == 0 and r.abandoned == 0
    assert all(peak <= r.max_backlog_bound for peak in r.backlog_peaks.values())
    # The overload went somewhere: the sources were left holding it.
    assert r.max_deferred > 0
    assert r.deferred_final == 0  # and the deferral fully drained


def test_block_recovers_through_checkpoint_and_replay(block_result):
    r = block_result
    assert r.aggregator_crashes == 1
    assert r.checkpoints > 0 and r.checkpoint_bytes > 0
    assert r.batches_dropped_while_down > 0  # the crash was real
    assert r.batches_replayed > 0  # retention replay closed the gap
    assert r.results > 0
    assert r.lost == 0  # exactly-once across the crash


def test_block_breaker_cooperates_with_the_fault_bus(block_result):
    r = block_result
    # The blackout announces link.down: the breaker opens without
    # burning timeouts, then closes again after the heal's probe.
    assert r.breaker_opens >= 1
    assert r.breaker_closes >= 1


def test_shed_bounds_latency_with_accounted_loss(shed_result, block_result):
    r = shed_result
    assert r.clean
    assert r.lost > 0  # shedding is lossy by contract...
    assert r.accounted  # ...but every record is accounted for
    assert r.lost == (
        r.shed + r.late_dropped + r.late_partial_records + r.abandoned_records
    )
    assert all(peak <= r.max_backlog_bound for peak in r.backlog_peaks.values())
    # What shed buys over block: the backlog never defers the source
    # and the latency tail stays below the lossless arm's.
    assert r.deferred_final == 0 and r.max_deferred == 0
    assert r.latency.p99 < block_result.latency.p99


def test_degrade_bounds_memory_at_twice_the_bound():
    r = run_overload(policy="degrade", seed=SEED)
    assert r.clean
    assert r.degraded_ticks > 0
    assert all(
        peak <= 2 * r.max_backlog_bound for peak in r.backlog_peaks.values()
    )
    assert r.lost == (
        r.shed + r.late_dropped + r.late_partial_records + r.abandoned_records
    )


def test_same_seed_same_numbers(block_result):
    """The scenario is deterministic: reruns agree to the record."""
    again = run_overload(policy="block", seed=SEED)
    for field in (
        "ingested",
        "counted",
        "results",
        "backlog_peaks",
        "max_deferred",
        "blocked_ticks",
        "breaker_opens",
        "breaker_closes",
        "retries",
        "checkpoints",
        "batches_replayed",
        "wan_bytes",
    ):
        assert getattr(again, field) == getattr(block_result, field), field
    assert again.latency.p99 == block_result.latency.p99


def test_describe_renders_the_verdict(block_result):
    text = block_result.describe()
    assert "CLEAN" in text
    assert "policy=block" in text
    assert f"records ingested: {block_result.ingested}" in text
