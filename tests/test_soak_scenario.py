"""The long-horizon soak harness and correlated-outage recovery."""

import numpy as np
import pytest

from repro.api import run_experiment
from repro.cloud.deployment import CloudEnvironment
from repro.config import SoakConfig
from repro.core.engine import SageEngine
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan
from repro.flow.policy import FlowConfig
from repro.gen import SoakRunner, regional_outage, run_soak
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.operators import builtin_aggregate
from repro.streaming.runtime import GeoStreamRuntime
from repro.streaming.shipping import ReliableShipping, SageShipping
from repro.streaming.sources import PoissonSource
from repro.streaming.windows import TumblingWindows


# ----------------------------------------------------------------------
# Config and phase plumbing
# ----------------------------------------------------------------------
def test_soak_config_validates():
    with pytest.raises(ValueError, match="hours"):
        SoakConfig(hours=0.0)
    with pytest.raises(ValueError, match="profile"):
        SoakConfig(profile="cozy")
    with pytest.raises(ValueError, match="check_interval"):
        SoakConfig(check_interval=0.0)


def test_phase_bounds_cover_the_horizon():
    runner = SoakRunner(SoakConfig(seed=3, hours=4.0))
    bounds = runner.phase_bounds()
    assert len(bounds) == 4
    assert bounds[0][0] == 0.0
    assert bounds[-1][1] == pytest.approx(4 * 3600.0)
    for (_, end), (start, _) in zip(bounds, bounds[1:]):
        assert end == start
    # Explicit phase length overrides the auto split.
    runner = SoakRunner(SoakConfig(seed=3, hours=4.0, phase_hours=1.5))
    assert len(runner.phase_bounds()) == 3


def test_soak_registered_as_scenario():
    report = run_experiment("soak", {"hours": 0.1, "profile": "calm"}, seed=5)
    assert report.scenario == "soak"
    assert report.clean
    assert report.config["profile"] == "calm"


# ----------------------------------------------------------------------
# Short soaks (every profile boots; the adversarial one holds its SLOs)
# ----------------------------------------------------------------------
def test_short_adversarial_soak_is_clean_and_accounted():
    report = run_soak(SoakConfig(seed=11, hours=0.25))
    res = report.details
    assert res.drained
    assert res.ingested > 0
    assert res.counted > 0
    assert res.accounted  # lost == shed + late + abandoned, at quiescence
    assert res.slo_violations == 0
    assert res.clean
    assert res.audit["checks"] > 10  # the auditor actually ran throughout
    assert res.phases  # per-phase rollups present
    assert sum(p["results"] for p in res.phases) == res.results


def test_soak_report_surfaces():
    report = run_soak(SoakConfig(seed=11, hours=0.1, profile="calm"))
    res = report.details
    text = report.describe()
    assert "soak run: profile=calm" in text
    assert "digest: " + res.digest in text
    assert "CLEAN" in text
    assert res.scenario["deployment"]
    assert res.usd_per_1k >= 0.0
    # The canonical dict round-trips through the report envelope.
    assert report.canonical_dict()["result"]["seed"] == 11


@pytest.mark.soak
def test_hour_long_hostile_soak_survives():
    """One simulated hour of the nastiest profile: correlated outages,
    flap storms, dup/drop windows — invariants must hold throughout."""
    report = run_soak(SoakConfig(seed=29, hours=1.0, profile="hostile"))
    res = report.details
    assert res.drained
    assert res.accounted
    assert res.slo_violations == 0
    assert res.clean


# ----------------------------------------------------------------------
# Correlated regional outage: fail a whole region, lose nothing
# ----------------------------------------------------------------------
def test_regional_outage_recovers_with_zero_loss():
    """Every VM of the site region crashes and every link to/from it is
    blackholed inside one jittered window; after recovery and a full
    drain, every ingested record is in a result — nothing lost, nothing
    abandoned."""
    env = CloudEnvironment(seed=97, variability_sigma=0.0, glitches=False)
    engine = SageEngine(env, deployment_spec={"NEU": 2, "WUS": 4})
    engine.start(learning_phase=60.0)
    flow = FlowConfig(policy="block", max_backlog=50_000)
    job = StreamJob(
        name="outage",
        sites=[SiteSpec("NEU", [PoissonSource("s", rate=25.0, keys=["a", "b"])])],
        aggregation_region="WUS",
        windows=TumblingWindows(10.0),
        aggregate=builtin_aggregate("count"),
        finalize_grace=30.0,
        flow=flow,
    )
    factory = ReliableShipping.factory(
        SageShipping.factory(n_nodes=2, plan_ttl=30.0),
        delivery_timeout=10.0,
        max_retries=50,
        max_inflight=8,
        breaker=True,
    )
    runtime = GeoStreamRuntime(engine, job, factory, per_vm_records_per_s=50.0)

    vm_ids = [vm.vm_id for vm in engine.deployment.vms("NEU")]
    rng = np.random.Generator(np.random.PCG64(5))
    plan = regional_outage(
        FaultPlan(), rng, 60.0, "NEU", vm_ids, ["WUS"], 45.0, 5.0
    )
    injector = FaultInjector(engine, plan).arm()

    t0 = engine.sim.now
    runtime.start()
    engine.run_until(t0 + 240.0)
    for site in runtime.sites.values():
        site.stop_sources(drain=True)
    drain_cap = engine.sim.now + 600.0
    while runtime.in_pipe() and engine.sim.now < drain_cap:
        engine.run_until(engine.sim.now + 10.0)
    assert runtime.in_pipe() == 0
    engine.run_until(engine.sim.now + job.watermark_lag + 10.0)
    runtime.stop()
    engine.run_until(engine.sim.now + job.finalize_grace + 30.0)

    # The outage actually covered the region: both VMs crashed, both
    # link directions went dark, all inside the jittered window.
    applied = {(f.kind, f.target) for f in injector.log}
    for vm_id in vm_ids:
        assert (FaultKind.VM_CRASH, vm_id) in applied
        assert (FaultKind.VM_RESTART, vm_id) in applied
    assert (FaultKind.LINK_DOWN, "NEU->WUS") in applied
    assert (FaultKind.LINK_DOWN, "WUS->NEU") in applied
    crash_times = [
        f.time for f in injector.log if f.kind == FaultKind.VM_CRASH
    ]
    assert max(crash_times) - min(crash_times) <= 5.0

    ingested = runtime.records_ingested()
    counted = runtime.records_in_results()
    site = runtime.sites["NEU"]
    assert ingested > 0
    # Zero loss end to end: block policy + reliable shipping rode out
    # the outage; every record ingested before/during/after it landed.
    assert counted == ingested
    assert site.records_shed == 0
    assert site.shipping.records_abandoned == 0
