"""Unit + property tests for pricing and cost metering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.pricing import CostMeter, EgressTier, PriceBook
from repro.simulation.units import GB, HOUR


@pytest.fixture
def prices():
    return PriceBook()


def test_first_tier_rate(prices):
    assert prices.egress_cost(1 * GB) == pytest.approx(0.12)


def test_ingress_free(prices):
    assert prices.ingress_usd_per_gb == 0.0


def test_tier_boundary_crossing():
    prices = PriceBook(
        egress_tiers=(
            EgressTier(10 * GB, 1.0),
            EgressTier(float("inf"), 0.5),
        )
    )
    # 15 GB: 10 at $1 + 5 at $0.5
    assert prices.egress_cost(15 * GB) == pytest.approx(12.5)
    # Starting already 8 GB in: 2 at $1 + 3 at $0.5
    assert prices.egress_cost(5 * GB, already_used=8 * GB) == pytest.approx(3.5)


def test_marginal_rate_reflects_usage():
    prices = PriceBook(
        egress_tiers=(
            EgressTier(10 * GB, 1.0),
            EgressTier(float("inf"), 0.5),
        )
    )
    assert prices.marginal_egress_usd_per_gb(0.0) == 1.0
    assert prices.marginal_egress_usd_per_gb(20 * GB) == 0.5


def test_meter_vm_linear_vs_billed():
    linear = CostMeter(billed=False)
    billed = CostMeter(billed=True)
    linear.charge_vm_time(0.06, 90.0)
    billed.charge_vm_time(0.06, 90.0)  # rounds up to a full hour
    assert linear.vm_usd == pytest.approx(0.06 * 90 / HOUR)
    assert billed.vm_usd == pytest.approx(0.06)


def test_meter_vm_rejects_negative():
    with pytest.raises(ValueError):
        CostMeter().charge_vm_time(0.06, -1.0)


def test_meter_egress_accumulates_tiers():
    meter = CostMeter(
        PriceBook(
            egress_tiers=(
                EgressTier(1 * GB, 1.0),
                EgressTier(float("inf"), 0.1),
            )
        )
    )
    meter.charge_egress(0.5 * GB)
    meter.charge_egress(1.0 * GB)  # crosses the boundary
    assert meter.egress_usd == pytest.approx(0.5 + 0.5 + 0.05)
    assert meter.egress_bytes == pytest.approx(1.5 * GB)


def test_meter_transactions_and_storage():
    meter = CostMeter()
    meter.charge_transactions(200_000)
    assert meter.storage_usd == pytest.approx(0.02)
    month = 30 * 24 * HOUR
    meter.charge_storage_capacity(10 * GB, month)
    assert meter.storage_usd == pytest.approx(0.02 + 0.95)


def test_snapshot_diff():
    meter = CostMeter()
    meter.charge_egress(1 * GB)
    before = meter.snapshot()
    meter.charge_egress(1 * GB)
    meter.charge_vm_time(0.06, HOUR)
    delta = meter.snapshot() - before
    assert delta.egress_bytes == pytest.approx(1 * GB)
    assert delta.vm_usd == pytest.approx(0.06)
    assert delta.total_usd == pytest.approx(0.06 + 0.12)


@given(st.floats(min_value=0, max_value=1e15), st.floats(min_value=0, max_value=1e15))
@settings(max_examples=100, deadline=None)
def test_property_egress_additivity(a, b):
    """Charging a then b equals charging a+b (tier accounting is exact)."""
    prices = PriceBook()
    split = CostMeter(prices)
    split.charge_egress(a)
    split.charge_egress(b)
    whole = CostMeter(prices)
    whole.charge_egress(a + b)
    assert split.egress_usd == pytest.approx(whole.egress_usd, rel=1e-9, abs=1e-9)


@given(st.floats(min_value=1, max_value=1e14))
@settings(max_examples=60, deadline=None)
def test_property_egress_monotone(x):
    prices = PriceBook()
    assert prices.egress_cost(x) <= prices.egress_cost(x * 1.5) + 1e-12
