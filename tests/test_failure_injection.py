"""Failure-injection scenarios across the stack.

Degradations and glitches are injected mid-run; the assertions check the
system's contracted behaviour under them: no lost or double-counted data,
bounded recovery, and honest accounting.
"""

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.cloud.network import Flow
from repro.core.engine import SageEngine
from repro.faults import run_chaos
from repro.simulation.units import GB, MB
from repro.streaming import (
    GeoStreamRuntime,
    PoissonSource,
    SageShipping,
    SiteSpec,
    StreamJob,
    TumblingWindows,
    builtin_aggregate,
)


def make_engine(seed=301, spec=None):
    env = CloudEnvironment(seed=seed, variability_sigma=0.0, glitches=False)
    engine = SageEngine(
        env, deployment_spec=spec or {"NEU": 6, "WEU": 4, "NUS": 6}
    )
    engine.start(learning_phase=180.0)
    return engine


def test_all_senders_degraded_transfer_still_completes():
    engine = make_engine()
    mt = engine.decisions.transfer("NEU", "NUS", 512 * MB, n_nodes=4)
    engine.run_until(engine.sim.now + 15)
    for vm in engine.deployment.vms("NEU"):
        vm.degrade(0.25)  # no healthy fallback exists anywhere
    while not mt.done:
        engine.run_until(engine.sim.now + 10)
    assert mt.done  # slow, but never stuck
    assert mt.bytes_confirmed >= 512 * MB * 0.999


def test_mid_transfer_recovery_is_used_after_replan():
    engine = make_engine()
    victims = engine.deployment.vms("NEU")[:3]
    mt = engine.decisions.transfer("NEU", "NUS", 4 * GB, n_nodes=3)
    engine.run_until(engine.sim.now + 15)
    for vm in victims:
        vm.degrade(0.2)
    engine.run_until(engine.sim.now + 120)
    for vm in victims:
        vm.restore()
    while not mt.done:
        engine.run_until(engine.sim.now + 10)
    assert mt.replans >= 1
    assert mt.done


def test_flow_on_degraded_relay_slows_but_finishes():
    env = CloudEnvironment(seed=5, variability_sigma=0.0, glitches=False)
    a = env.provision("NEU", "Small")[0]
    relay = env.provision("EUS", "Small")[0]
    b = env.provision("NUS", "Small")[0]
    flow = Flow([a, relay, b], 100 * MB, streams=4)
    env.network.start_flow(flow)
    env.sim.run_until(5.0)
    rate_before = flow.rate
    relay.degrade(0.1)
    env.network._recompute()  # rates react to the degradation
    assert flow.rate < rate_before * 0.5
    env.sim.run_until(100_000.0)
    assert flow.done


def test_streaming_site_stall_recovers_without_loss():
    """A site's VMs collapse for a while; every record eventually counts
    exactly once."""
    engine = make_engine(seed=302)
    job = StreamJob(
        name="stall",
        sites=[SiteSpec("NEU", [PoissonSource("s", rate=200.0, keys=["k"])])],
        aggregation_region="NUS",
        windows=TumblingWindows(10.0),
        aggregate=builtin_aggregate("count"),
    )
    runtime = GeoStreamRuntime(engine, job, SageShipping.factory(n_nodes=1))
    runtime.start()
    engine.run_until(engine.sim.now + 60)
    for vm in engine.deployment.vms("NEU"):
        vm.degrade(0.05)  # WAN shipping crawls
    engine.run_until(engine.sim.now + 60)
    for vm in engine.deployment.vms("NEU"):
        vm.restore()
    engine.run_until(engine.sim.now + 120)
    runtime.stop()
    engine.run_until(engine.sim.now + 60)
    counted = sum(r.value for r in runtime.results)
    windows = {(r.window, r.key) for r in runtime.results}
    assert len(windows) == len(runtime.results)  # no double emission
    assert counted <= runtime.records_ingested()
    assert counted >= 0.7 * runtime.records_ingested()


def test_glitchy_link_does_not_break_monitoring():
    env = CloudEnvironment(seed=303, variability_sigma=0.3, glitches=True)
    engine = SageEngine(env, deployment_spec={"NEU": 2, "NUS": 2})
    engine.start(learning_phase=3600.0)  # a glitch almost surely occurred
    est = engine.monitor.link_map.estimate("NEU", "NUS")
    assert est.known
    hist = engine.monitor.history("thr/NEU->NUS")
    # The estimator sits near the central mass despite deep glitch samples.
    assert est.mean == pytest.approx(hist.percentile(50), rel=0.35)


def test_cancelled_managed_transfer_bills_partial_egress():
    engine = make_engine(seed=304)
    before = engine.env.meter.snapshot()
    mt = engine.decisions.transfer("NEU", "NUS", 4 * GB, n_nodes=4)
    engine.run_until(engine.sim.now + 30)
    session = mt.current_session
    moved = session.transferred
    session.cancel()
    spent = engine.env.meter.snapshot() - before
    assert moved > 0
    assert spent.egress_bytes == pytest.approx(moved, rel=0.05)


# ----------------------------------------------------------------------
# Hard-failure chaos scenarios (run with ``pytest -m chaos``)
# ----------------------------------------------------------------------
@pytest.mark.chaos
def test_chaos_scenario_recovers_clean():
    """Two sender VMs crash and a link blackholes mid-run; the pipeline
    must deliver every ingested record exactly once, within bounds."""
    result = run_chaos(seed=7, duration=240.0)
    assert result.clean, result.describe()
    assert result.lost == 0 and result.double_counted == 0
    assert result.abandoned == 0  # bounded retries never gave up
    assert result.retries > 0  # the faults really bit
    assert result.suspicions >= 2 and result.recoveries >= 2
    assert result.detection_latencies
    assert max(result.detection_latencies) <= result.detection_bound
    # Every duplicate delivery (injected or late retry copy) was removed
    # by the aggregator — none slipped through, none vanished elsewhere.
    assert result.duplicates_delivered > 0
    assert result.duplicates_dropped == result.duplicates_delivered
    # Bounded recovery: the drain stays within grace + shipping slack.
    assert result.drain_seconds <= 150.0
    # Honest accounting: retried batches paid real egress.
    assert result.wan_bytes > 0
    assert result.egress_bytes > 0 and result.egress_usd > 0


@pytest.mark.chaos
def test_chaos_scenario_is_deterministic():
    a = run_chaos(seed=11, duration=200.0)
    b = run_chaos(seed=11, duration=200.0)
    assert a.faults == b.faults  # bit-identical fault log
    assert (a.retries, a.duplicates_delivered, a.ingested, a.counted) == (
        b.retries, b.duplicates_delivered, b.ingested, b.counted
    )
    assert a.clean and b.clean


@pytest.mark.chaos
def test_chaos_baseline_without_faults_is_quiet():
    result = run_chaos(seed=7, duration=180.0, inject=False)
    assert result.clean
    assert not result.faults
    assert result.retries == 0 and result.abandoned == 0
    assert result.duplicates_delivered == 0
    assert result.suspicions == 0 and result.recoveries == 0
