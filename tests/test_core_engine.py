"""Unit tests for the SageEngine composition root."""

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.core.engine import SageEngine
from repro.monitor.agent import MonitorConfig


def test_engine_provisions_deployment():
    env = CloudEnvironment(seed=1, variability_sigma=0.0, glitches=False)
    engine = SageEngine(env, deployment_spec={"NEU": 3, "NUS": 2})
    assert env.deployment.size() == 5
    assert sorted(env.deployment.regions()) == ["NEU", "NUS"]


def test_engine_learning_phase_warms_link_map():
    env = CloudEnvironment(seed=2, variability_sigma=0.0, glitches=False)
    engine = SageEngine(env, deployment_spec={"NEU": 2, "NUS": 2})
    assert not engine.monitor.link_map.estimate("NEU", "NUS").known
    engine.start(learning_phase=300.0)
    est = engine.monitor.link_map.estimate("NEU", "NUS")
    assert est.known and est.samples >= 5
    assert env.now == 300.0


def test_engine_zero_learning_phase():
    env = CloudEnvironment(seed=3, variability_sigma=0.0, glitches=False)
    engine = SageEngine(env, deployment_spec={"NEU": 2, "NUS": 2})
    engine.start(learning_phase=0.0)
    # One immediate round ran, nothing more.
    assert env.now == 0.0
    engine.stop()


def test_engine_single_region_skips_link_watching():
    env = CloudEnvironment(seed=4, variability_sigma=0.0, glitches=False)
    engine = SageEngine(env, deployment_spec={"NEU": 3})
    engine.start(learning_phase=60.0)
    assert engine.monitor.link_map.pairs() == []


def test_engine_custom_monitor_config():
    env = CloudEnvironment(seed=5, variability_sigma=0.0, glitches=False)
    engine = SageEngine(
        env,
        deployment_spec={"NEU": 2, "NUS": 2},
        monitor_config=MonitorConfig(interval=10.0, strategy="LSI"),
    )
    engine.start(learning_phase=100.0)
    est = engine.monitor.link_map.estimator("NEU", "NUS")
    assert est.name == "LSI"
    assert est.samples_seen >= 9


def test_engine_shortcuts():
    env = CloudEnvironment(seed=6, variability_sigma=0.0, glitches=False)
    engine = SageEngine(env, deployment_spec={"NEU": 1})
    assert engine.sim is env.sim
    assert engine.deployment is env.deployment
    engine.run_until(42.0)
    assert env.now == 42.0
