"""Unit tests for batching policies and the batcher."""

import pytest

from repro.streaming.batching import (
    AdaptiveBatchPolicy,
    Batcher,
    HybridBatchPolicy,
    SizeBatchPolicy,
    TimeBatchPolicy,
)
from repro.streaming.events import Record


def rec(t, size=100.0):
    return Record(event_time=t, key="k", value=1.0, size_bytes=size)


def test_size_policy():
    p = SizeBatchPolicy(1000.0)
    assert not p.should_flush(999.0, 5, 100.0)
    assert p.should_flush(1000.0, 5, 0.0)
    with pytest.raises(ValueError):
        SizeBatchPolicy(0.0)


def test_time_policy():
    p = TimeBatchPolicy(2.0)
    assert not p.should_flush(1e9, 5, 1.9)
    assert p.should_flush(1.0, 1, 2.0)
    with pytest.raises(ValueError):
        TimeBatchPolicy(-1.0)


def test_hybrid_policy_either_fires():
    p = HybridBatchPolicy(1000.0, 2.0)
    assert p.should_flush(1000.0, 1, 0.0)
    assert p.should_flush(1.0, 1, 2.0)
    assert not p.should_flush(500.0, 1, 1.0)


def test_adaptive_policy_follows_link():
    thr = {"v": 1_000_000.0}
    p = AdaptiveBatchPolicy(lambda: thr["v"], target_occupancy=0.5,
                            max_delay=5.0, min_bytes=1000.0)
    assert p.current_threshold() == 500_000.0
    thr["v"] = 100.0  # link collapsed → clamp to min
    assert p.current_threshold() == 1000.0
    thr["v"] = float("nan")  # unmonitored → conservative
    assert p.current_threshold() == 1000.0
    assert p.should_flush(0.0, 0, 5.0)  # staleness bound regardless


def test_adaptive_policy_validation():
    with pytest.raises(ValueError):
        AdaptiveBatchPolicy(lambda: 1.0, target_occupancy=0.0)


def test_batcher_flushes_on_size():
    b = Batcher(SizeBatchPolicy(250.0), origin="NEU")
    assert b.offer(rec(0.0), now=0.0) is None
    assert b.offer(rec(0.1), now=0.1) is None
    batch = b.offer(rec(0.2), now=0.2)
    assert batch is not None
    assert batch.count == 3
    assert batch.origin == "NEU"
    assert b.buffered_count == 0


def test_batcher_flushes_on_age_via_tick():
    b = Batcher(TimeBatchPolicy(2.0), origin="NEU")
    b.offer(rec(0.0), now=0.0)
    assert b.maybe_flush(now=1.0) is None
    batch = b.maybe_flush(now=2.5)
    assert batch is not None
    assert batch.oldest_event_time == 0.0


def test_batcher_forced_flush_and_seq():
    b = Batcher(SizeBatchPolicy(1e9), origin="X")
    assert b.flush(now=0.0) is None  # empty
    b.offer(rec(0.0), now=0.0)
    b1 = b.flush(now=1.0)
    b.offer(rec(2.0), now=2.0)
    b2 = b.flush(now=3.0)
    assert (b1.seq, b2.seq) == (0, 1)
    assert b.batches_cut == 2


def test_batch_properties():
    b = Batcher(SizeBatchPolicy(1e9), origin="X")
    b.offer(rec(5.0, size=100), now=5.0)
    b.offer(rec(3.0, size=200), now=5.5)
    batch = b.flush(now=6.0)
    assert batch.size_bytes == 300.0
    assert batch.oldest_event_time == 3.0
    assert batch.created_at == 6.0


def test_empty_batch_rejected():
    from repro.streaming.events import Batch

    with pytest.raises(ValueError):
        Batch([], "X", 0.0)
