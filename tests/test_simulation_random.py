"""Unit + property tests for named RNG streams."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.random import RngRegistry


def test_same_name_returns_same_generator():
    r = RngRegistry(seed=1)
    assert r.get("a") is r.get("a")


def test_streams_are_independent_of_creation_order():
    r1 = RngRegistry(seed=5)
    a_first = r1.get("a").random(4).tolist()
    r2 = RngRegistry(seed=5)
    r2.get("zzz").random(100)  # interleave another consumer
    a_second = r2.get("a").random(4).tolist()
    assert a_first == a_second


def test_different_names_differ():
    r = RngRegistry(seed=0)
    assert r.get("x").random(8).tolist() != r.get("y").random(8).tolist()


def test_different_seeds_differ():
    a = RngRegistry(seed=1).get("s").random(8).tolist()
    b = RngRegistry(seed=2).get("s").random(8).tolist()
    assert a != b


def test_contains():
    r = RngRegistry(seed=0)
    assert "foo" not in r
    r.get("foo")
    assert "foo" in r


def test_seed_type_checked():
    with pytest.raises(TypeError):
        RngRegistry(seed="42")  # type: ignore[arg-type]


def test_spawn_is_deterministic_and_distinct():
    parent = RngRegistry(seed=3)
    c1 = parent.spawn("child").get("s").random(4).tolist()
    c2 = RngRegistry(seed=3).spawn("child").get("s").random(4).tolist()
    assert c1 == c2
    assert c1 != parent.get("s").random(4).tolist()


@given(st.text(min_size=1, max_size=40), st.integers(0, 2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_property_reproducible_for_any_name(name, seed):
    a = RngRegistry(seed=seed).get(name).random(3).tolist()
    b = RngRegistry(seed=seed).get(name).random(3).tolist()
    assert a == b


@given(
    st.lists(st.text(min_size=1, max_size=20), min_size=2, max_size=6, unique=True)
)
@settings(max_examples=50, deadline=None)
def test_property_distinct_names_distinct_streams(names):
    r = RngRegistry(seed=9)
    draws = [tuple(r.get(n).random(4).tolist()) for n in names]
    assert len(set(draws)) == len(draws)
