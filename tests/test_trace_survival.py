"""Trace-context survival across retries, replay, and coarsening.

The lineage contract: a batch's trace identity is minted exactly once
(at cut time) and must survive everything the batch survives. These
tests chase the three paths that could plausibly break it — at-least-once
retries and duplicate deliveries, checkpoint-restore replay after an
aggregator crash, and batch coarsening under the ``degrade`` policy —
asserting IDs neither duplicate nor vanish.
"""

import math

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.core.engine import SageEngine
from repro.flow.policy import FlowConfig
from repro.obs.lineage import BatchTrace, SiteLeg
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.events import Batch, Record
from repro.streaming.operators import PartialAggregate, builtin_aggregate
from repro.streaming.runtime import GeoStreamRuntime, GlobalAggregator
from repro.streaming.shipping import ReliableShipping, SageShipping, _ShipInstruments
from repro.streaming.sources import PoissonSource
from repro.streaming.windows import TumblingWindows, Window


@pytest.fixture
def engine():
    env = CloudEnvironment(seed=71, variability_sigma=0.0, glitches=False)
    eng = SageEngine(env, deployment_spec={"NEU": 2, "NUS": 2})
    eng.start(learning_phase=30.0)
    return eng


@pytest.fixture
def job():
    return StreamJob(
        name="trace",
        sites=[SiteSpec("NEU", [PoissonSource("s", rate=1.0)])],
        aggregation_region="NUS",
        windows=TumblingWindows(10.0),
        aggregate=builtin_aggregate("count"),
        finalize_grace=5.0,
    )


def traced_batch(engine, seq, count=3, origin="NEU"):
    """A hand-built partial batch carrying a stamped trace (normally the
    batcher's job)."""
    pa = PartialAggregate(Window(0.0, 10.0), "k", state=count, count=count)
    record = Record(10.0, "k", pa, origin=origin, size_bytes=200.0)
    batch = Batch([record], origin, created_at=engine.sim.now, seq=seq)
    batch.trace = BatchTrace.stamp(origin, seq, engine.sim.now)
    return batch


class InstrumentedFlaky:
    """Inner backend that records lineage hops like the real backends:
    swallows the first ``fail_first`` attempts (hop never closes), then
    delivers each attempt after ``delay`` seconds."""

    def __init__(self, engine, fail_first=0, delay=1.0):
        self.engine = engine
        self.fail_first = fail_first
        self.delay = delay
        self.attempts = 0
        self.bytes_shipped = 0.0
        self._inst = _ShipInstruments(engine, "stub", "NEU", "NUS")

    def ship(self, batch, on_delivered):
        self.attempts += 1
        self.bytes_shipped += batch.size_bytes
        on_delivered = self._inst.wrap(batch, on_delivered)
        if self.attempts > self.fail_first:
            self.engine.sim.schedule(self.delay, on_delivered, batch)


# ----------------------------------------------------------------------
# ReliableShipping retries
# ----------------------------------------------------------------------
def test_retries_append_hops_without_changing_identity(engine):
    inner = InstrumentedFlaky(engine, fail_first=2, delay=1.0)
    reliable = ReliableShipping(engine, inner, delivery_timeout=5.0)
    delivered = []
    batch = traced_batch(engine, seq=4)
    original_id = batch.trace.trace_id
    reliable.ship(batch, delivered.append)
    engine.run_until(engine.sim.now + 60.0)

    assert inner.attempts == 3  # two swallowed, one landed
    assert len(delivered) == 1
    assert delivered[0] is batch  # the same object all the way through
    trace = batch.trace
    assert trace.trace_id == original_id
    # One hop per attempt; only the last one closed.
    assert trace.attempts == 3
    assert sum(1 for h in trace.hops if h.delivered) == 1
    assert trace.delivered
    assert math.isfinite(trace.delivered_at)
    # Backoff ordering survives in the hop timeline.
    sent = [h.sent_at for h in trace.hops]
    assert sent == sorted(sent)


def test_duplicate_delivery_shares_one_trace(engine, job):
    """A late first copy landing after its retry: the aggregator sees the
    trace twice and must count its records exactly once."""
    # Delivery takes longer than the timeout, so the retry fires while
    # the first copy is still in flight — then both arrive.
    inner = InstrumentedFlaky(engine, fail_first=0, delay=8.0)
    reliable = ReliableShipping(engine, inner, delivery_timeout=5.0)
    agg = GlobalAggregator(engine, job)
    batch = traced_batch(engine, seq=9, count=3)
    reliable.ship(batch, agg.deliver)
    engine.run_until(engine.sim.now + 120.0)

    assert inner.attempts >= 2
    assert agg.duplicates_dropped >= 1
    assert len(agg.results) == 1
    result = agg.results[0]
    assert result.record_count == 3  # counted once, not per copy
    lineage = result.lineage
    assert lineage is not None
    (leg,) = lineage.legs
    assert leg.site == "NEU"
    assert leg.batches == 1  # one trace identity, however many copies
    assert leg.attempts == batch.trace.attempts
    assert leg.records == 3


# ----------------------------------------------------------------------
# Checkpoint/restore
# ----------------------------------------------------------------------
def test_pending_lineage_survives_checkpoint_restore(engine, job):
    agg = GlobalAggregator(engine, job)
    batch = traced_batch(engine, seq=2, count=5)
    batch.trace.begin_hop("NEU->NUS", "sage", engine.sim.now - 1.0)
    batch.trace.hops[0].arrived_at = engine.sim.now
    agg.deliver(batch)
    payload = agg.checkpoint()
    (row,) = payload["pending"]
    assert len(row) == 8  # legs ride as the 8th element
    (leg_dict,) = row[7]
    assert leg_dict["site"] == "NEU"

    fresh = GlobalAggregator(engine, job)
    fresh.restore(payload)
    engine.run_until(engine.sim.now + job.finalize_grace + 1.0)
    (result,) = fresh.results
    assert result.record_count == 5
    lineage = result.lineage
    (leg,) = lineage.legs
    # Timestamps recorded before the crash survive the round trip.
    assert leg.created_at == batch.trace.created_at
    assert leg.first_sent_at == batch.trace.first_sent_at
    assert leg.arrived_at == batch.trace.delivered_at
    assert leg.complete and lineage.complete


def test_legacy_checkpoint_rows_restore_without_lineage(engine, job):
    agg = GlobalAggregator(engine, job)
    agg.deliver(traced_batch(engine, seq=1, count=2))
    payload = agg.checkpoint()
    # Pre-lineage checkpoints had 7-element pending rows.
    payload["pending"] = [row[:7] for row in payload["pending"]]
    fresh = GlobalAggregator(engine, job)
    fresh.restore(payload)
    engine.run_until(engine.sim.now + job.finalize_grace + 1.0)
    (result,) = fresh.results
    assert result.record_count == 2
    assert result.lineage is not None
    assert result.lineage.legs == ()  # restored without provenance


def test_replay_after_restore_does_not_mint_new_identity(engine, job):
    """Replayed retained batches carry their original traces; the dedup
    set restored from the checkpoint absorbs them."""
    agg = GlobalAggregator(engine, job)
    agg.exactly_once = True
    batch = traced_batch(engine, seq=6, count=4)
    agg.deliver(batch)
    payload = agg.checkpoint()

    fresh = GlobalAggregator(engine, job)
    fresh.exactly_once = True
    fresh.restore(payload)
    fresh.deliver(batch)  # the replay: same object, same trace
    assert fresh.duplicates_dropped == 1
    engine.run_until(engine.sim.now + job.finalize_grace + 1.0)
    results = fresh.results + fresh.uncommitted
    assert len(results) == 1
    assert results[0].record_count == 4


def test_crash_replay_preserves_lineage_end_to_end():
    env = CloudEnvironment(seed=61, variability_sigma=0.0, glitches=False)
    engine = SageEngine(env, deployment_spec={"NEU": 2, "NUS": 2})
    engine.start(learning_phase=60.0)
    job = StreamJob(
        name="crash",
        sites=[SiteSpec("NEU", [PoissonSource("p", rate=40.0, keys=["k1", "k2"])])],
        aggregation_region="NUS",
        windows=TumblingWindows(10.0),
        aggregate=builtin_aggregate("count"),
        watermark_lag=5.0,
        finalize_grace=15.0,
    )
    runtime = GeoStreamRuntime(engine, job, SageShipping.factory(n_nodes=2))
    runtime.enable_checkpointing(interval=5.0)
    runtime.start()
    engine.run_until(engine.sim.now + 30.0)
    runtime.crash_aggregator()
    engine.run_until(engine.sim.now + 10.0)
    runtime.restart_aggregator()
    engine.run_until(engine.sim.now + 30.0)
    for site in runtime.sites.values():
        site.stop_sources()
    engine.run_until(engine.sim.now + job.watermark_lag + 15.0)
    runtime.stop()
    engine.run_until(engine.sim.now + job.finalize_grace + 30.0)

    results = runtime.results
    assert results
    # Exactly once across the crash, lineage intact on every result.
    assert len({(r.window, r.key) for r in results}) == len(results)
    assert all(r.lineage is not None for r in results)
    # Post-restart results (merged from replayed batches) still resolve
    # their legs to the original per-site trace identities.
    for result in results:
        for leg in result.lineage.legs:
            assert leg.site == "NEU"
            assert leg.batches >= 1
            assert leg.attempts >= leg.batches


# ----------------------------------------------------------------------
# Degrade-policy coarsening
# ----------------------------------------------------------------------
def test_degrade_coarsening_neither_duplicates_nor_drops_traces():
    env = CloudEnvironment(seed=29, variability_sigma=0.0, glitches=False)
    engine = SageEngine(env, deployment_spec={"NEU": 2, "NUS": 2})
    engine.start(learning_phase=60.0)
    flow = FlowConfig(policy="degrade", max_backlog=300, degrade_factor=4)
    job = StreamJob(
        name="deg",
        sites=[SiteSpec("NEU", [PoissonSource("p", rate=400.0, keys=["k1", "k2"])])],
        aggregation_region="NUS",
        windows=TumblingWindows(10.0),
        aggregate=builtin_aggregate("count"),
        watermark_lag=5.0,
        finalize_grace=15.0,
        flow=flow,
    )
    runtime = GeoStreamRuntime(
        engine,
        job,
        SageShipping.factory(n_nodes=2),
        per_vm_records_per_s=60.0,  # undersized: coarse mode must engage
    )
    runtime.start()
    engine.run_until(engine.sim.now + 60.0)
    site = runtime.sites["NEU"]
    assert site.degraded_ticks > 0  # the coarse path actually ran
    site.stop_sources()
    engine.run_until(engine.sim.now + job.watermark_lag + 60.0)
    runtime.stop()
    engine.run_until(engine.sim.now + job.finalize_grace + 30.0)

    # Every batch the coarsened batcher cut arrived at the aggregator
    # exactly once under its own identity: no trace vanished in the
    # coarse flush path, none was minted twice.
    cut = site.batcher.batches_cut
    seen = {s for (o, s) in runtime.aggregator._seen_batches if o == "NEU"}
    assert cut > 0
    assert len(seen) == cut
    assert seen == set(range(cut))  # seqs are dense: cut once each
    assert runtime.aggregator.duplicates_dropped == 0
    # And the emitted windows still carry complete provenance.
    stats = runtime.lineage_stats()
    assert stats["results"] > 0
    assert stats["complete"] == stats["results"]
