"""Unit + property tests for operators and mergeable aggregates."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming.events import Record
from repro.streaming.operators import (
    FilterOperator,
    MapOperator,
    PartialAggregate,
    WindowedAggregator,
    builtin_aggregate,
)
from repro.streaming.windows import TumblingWindows


def rec(t, key="k", value=1.0):
    return Record(event_time=t, key=key, value=value)


# ----------------------------------------------------------------------
# Simple operators
# ----------------------------------------------------------------------
def test_map_operator():
    op = MapOperator(lambda r: Record(r.event_time, r.key, r.value * 2))
    out = op.process(rec(1.0, value=3.0))
    assert out[0].value == 6.0


def test_map_operator_can_drop():
    op = MapOperator(lambda r: None)
    assert op.process(rec(1.0)) == []


def test_filter_operator():
    op = FilterOperator(lambda r: r.value > 0)
    assert op.process(rec(1.0, value=5.0))
    assert op.process(rec(1.0, value=-5.0)) == []


# ----------------------------------------------------------------------
# Built-in aggregates
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "name,values,expected",
    [
        ("count", [1.0, 2.0, 3.0], 3),
        ("sum", [1.0, 2.0, 3.0], 6.0),
        ("min", [4.0, 1.0, 3.0], 1.0),
        ("max", [4.0, 1.0, 3.0], 4.0),
        ("mean", [2.0, 4.0, 6.0], 4.0),
        ("var", [2.0, 4.0, 6.0], 8.0 / 3.0),
    ],
)
def test_builtin_aggregates_sequential(name, values, expected):
    agg = builtin_aggregate(name)
    state = agg.zero()
    for v in values:
        state = agg.add(state, v)
    assert agg.result(state) == pytest.approx(expected)


def test_unknown_aggregate():
    with pytest.raises(ValueError):
        builtin_aggregate("median")


values_strategy = st.lists(
    st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50
)


@pytest.mark.parametrize("name", ["count", "sum", "min", "max", "mean", "var"])
@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_property_merge_equals_sequential(name, data):
    """merge(partial(A), partial(B)) == partial(A ++ B) — the invariant
    geo-distributed partial aggregation rests on."""
    a = data.draw(values_strategy)
    b = data.draw(values_strategy)
    agg = builtin_aggregate(name)

    def fold(vals):
        s = agg.zero()
        for v in vals:
            s = agg.add(s, v)
        return s

    merged = agg.merge(fold(a), fold(b))
    direct = fold(a + b)
    assert agg.result(merged) == pytest.approx(
        agg.result(direct), rel=1e-9, abs=1e-9
    )


@pytest.mark.parametrize("name", ["count", "sum", "min", "max", "mean", "var"])
@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_property_merge_commutative(name, data):
    a = data.draw(values_strategy)
    b = data.draw(values_strategy)
    agg = builtin_aggregate(name)

    def fold(vals):
        s = agg.zero()
        for v in vals:
            s = agg.add(s, v)
        return s

    ab = agg.merge(fold(a), fold(b))
    ba = agg.merge(fold(b), fold(a))
    assert agg.result(ab) == pytest.approx(agg.result(ba), rel=1e-9, abs=1e-9)


# ----------------------------------------------------------------------
# WindowedAggregator
# ----------------------------------------------------------------------
def test_windowed_aggregation_emits_on_watermark():
    wa = WindowedAggregator(TumblingWindows(10.0), builtin_aggregate("sum"))
    for t in (1.0, 5.0, 9.0, 11.0):
        wa.process(rec(t, value=2.0))
    assert wa.advance_watermark(5.0) == []  # window not closed yet
    out = wa.advance_watermark(10.0)
    assert len(out) == 1
    pa = out[0].value
    assert isinstance(pa, PartialAggregate)
    assert pa.state == pytest.approx(6.0)
    assert pa.count == 3
    out2 = wa.advance_watermark(20.0)
    assert out2[0].value.state == pytest.approx(2.0)


def test_windowed_aggregation_per_key():
    wa = WindowedAggregator(TumblingWindows(10.0), builtin_aggregate("count"))
    wa.process(rec(1.0, key="a"))
    wa.process(rec(2.0, key="b"))
    wa.process(rec(3.0, key="a"))
    out = wa.advance_watermark(10.0)
    by_key = {r.key: r.value.state for r in out}
    assert by_key == {"a": 2, "b": 1}


def test_late_records_dropped_and_counted():
    wa = WindowedAggregator(
        TumblingWindows(10.0), builtin_aggregate("count"), allowed_lateness=2.0
    )
    wa.advance_watermark(20.0)
    wa.process(rec(19.0))  # within lateness: kept
    wa.process(rec(5.0))  # far too late: dropped
    assert wa.late_dropped == 1
    assert wa.records_seen == 2


def test_watermark_cannot_regress():
    wa = WindowedAggregator(TumblingWindows(10.0), builtin_aggregate("count"))
    wa.advance_watermark(50.0)
    with pytest.raises(ValueError):
        wa.advance_watermark(10.0)


def test_open_windows_tracked():
    wa = WindowedAggregator(TumblingWindows(10.0), builtin_aggregate("count"))
    wa.process(rec(5.0))
    wa.process(rec(15.0))
    assert wa.open_windows == 2
    wa.advance_watermark(30.0)
    assert wa.open_windows == 0
