"""Tests for the multi-site MapReduce meta-reducer."""

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.core.engine import SageEngine
from repro.simulation.units import KB, MB
from repro.streaming.metareduce import (
    MapReduceSiteSpec,
    MetaReducer,
)
from repro.streaming.shipping import BlobShipping, SageShipping


def make_engine(seed=23):
    env = CloudEnvironment(seed=seed, variability_sigma=0.0, glitches=False)
    engine = SageEngine(
        env, deployment_spec={"NEU": 3, "WEU": 3, "NUS": 3}
    )
    engine.start(learning_phase=120.0)
    return engine


def specs(n_files=50, size=1 * MB, compute=5.0):
    return [
        MapReduceSiteSpec("NEU", [size] * n_files, compute_time=compute),
        MapReduceSiteSpec("WEU", [size] * n_files, compute_time=compute),
    ]


def test_metareduce_delivers_everything():
    engine = make_engine()
    mr = MetaReducer(engine, specs(), "NUS", SageShipping.factory(n_nodes=2))
    report = mr.run()
    assert report.files_delivered == 100
    assert report.bytes_delivered == pytest.approx(100 * MB, rel=0.01)
    assert report.transfer_time > 5.0  # compute delay included
    assert report.completion_time > report.transfer_time  # reduce phase
    assert set(report.per_site_transfer_time) == {"NEU", "WEU"}


def test_metareduce_compute_delay_gates_shipping():
    engine = make_engine(seed=3)
    fast = MetaReducer(
        engine,
        [MapReduceSiteSpec("NEU", [1 * MB] * 10, compute_time=0.0)],
        "NUS",
        SageShipping.factory(n_nodes=2),
    ).run()
    engine2 = make_engine(seed=3)
    slow = MetaReducer(
        engine2,
        [MapReduceSiteSpec("NEU", [1 * MB] * 10, compute_time=60.0)],
        "NUS",
        SageShipping.factory(n_nodes=2),
    ).run()
    assert slow.transfer_time == pytest.approx(fast.transfer_time + 60.0, rel=0.2)


def test_metareduce_sage_beats_blob_on_large_files():
    engine_blob = make_engine(seed=8)
    blob = MetaReducer(
        engine_blob,
        [MapReduceSiteSpec("NEU", [20 * MB] * 30, compute_time=0.0)],
        "NUS",
        BlobShipping.factory(),
    ).run()
    engine_sage = make_engine(seed=8)
    sage = MetaReducer(
        engine_sage,
        [MapReduceSiteSpec("NEU", [20 * MB] * 30, compute_time=0.0)],
        "NUS",
        SageShipping.factory(n_nodes=3),
    ).run()
    assert sage.transfer_time < blob.transfer_time


def test_metareduce_validation():
    engine = make_engine()
    with pytest.raises(ValueError):
        MetaReducer(engine, [], "NUS", SageShipping.factory())
    with pytest.raises(ValueError):
        MapReduceSiteSpec("NEU", [])
    with pytest.raises(ValueError):
        MapReduceSiteSpec("NEU", [0.0])
    with pytest.raises(ValueError, match="reducer region"):
        MetaReducer(
            engine,
            [MapReduceSiteSpec("NEU", [1.0])],
            "SUS",
            SageShipping.factory(),
        )


def test_metareduce_mean_file_time():
    engine = make_engine(seed=5)
    report = MetaReducer(
        engine,
        [MapReduceSiteSpec("NEU", [1 * MB] * 10, compute_time=0.0)],
        "NUS",
        SageShipping.factory(n_nodes=2),
    ).run()
    assert report.mean_file_time > 0
