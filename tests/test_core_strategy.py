"""Tests for the SageStrategy adapter (the common strategy contract)."""

import pytest

from repro.core.strategy import SageStrategy
from repro.simulation.units import GB, MB
from repro.workloads.synthetic import fresh_engine


@pytest.fixture
def engine():
    return fresh_engine(
        seed=91,
        spec={"NEU": 6, "WEU": 3, "EUS": 3, "NUS": 6},
        learning_phase=180.0,
        variability_sigma=0.0,
        glitches=False,
    )


def test_strategy_runs_and_reports(engine):
    r = SageStrategy(n_nodes=4).run(engine, "NEU", "NUS", 256 * MB)
    assert r.label == "GEO-SAGE"
    assert r.seconds > 0
    assert r.egress_usd > 0
    assert r.vm_seconds_busy > 0


def test_strategy_budget_mode(engine):
    r = SageStrategy(budget_usd=0.2).run(engine, "NEU", "NUS", 1 * GB)
    assert r.egress_usd <= 0.2


def test_strategy_deadline_mode(engine):
    r = SageStrategy(deadline_s=300.0).run(engine, "NEU", "NUS", 512 * MB)
    assert r.seconds <= 300.0 * 1.25


def test_strategy_intrusiveness(engine):
    slow = SageStrategy(n_nodes=2, intrusiveness=0.1, adaptive=False).run(
        engine, "NEU", "NUS", 128 * MB
    )
    fast = SageStrategy(n_nodes=2, intrusiveness=1.0, adaptive=False).run(
        engine, "NEU", "NUS", 128 * MB
    )
    assert slow.seconds > 2 * fast.seconds


def test_strategy_non_adaptive_runs_single_session(engine):
    r = SageStrategy(n_nodes=3, adaptive=False).run(engine, "NEU", "NUS", 256 * MB)
    assert r.seconds > 0
