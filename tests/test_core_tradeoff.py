"""Unit + property tests for the money/time trade-off engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.pricing import PriceBook
from repro.core.cost import CostModel
from repro.core.time_model import TransferTimeModel
from repro.core.tradeoff import TradeoffAnalyzer
from repro.simulation.units import GB, MB


@pytest.fixture
def analyzer():
    return TradeoffAnalyzer(
        TransferTimeModel(gain=0.65), CostModel(PriceBook()), max_nodes=16
    )


def test_options_curve_shape(analyzer):
    opts = analyzer.options(1 * GB, 5 * MB)
    assert len(opts) == 16
    times = [o.predicted_time for o in opts]
    assert times == sorted(times, reverse=True)  # monotone faster
    # Egress floor: no option is cheaper than the egress alone.
    assert all(o.usd >= 0.12 for o in opts)


def test_budget_constrained_choice(analyzer):
    opts = analyzer.options(1 * GB, 5 * MB)
    budget = opts[5].usd  # exactly affords 6 nodes... or a faster cheaper one
    chosen = analyzer.nodes_within_budget(1 * GB, 5 * MB, budget)
    assert chosen is not None
    assert chosen.usd <= budget
    # No feasible option is faster.
    feasible = [o for o in opts if o.usd <= budget]
    assert chosen.predicted_time == min(o.predicted_time for o in feasible)


def test_budget_infeasible_returns_none(analyzer):
    assert analyzer.nodes_within_budget(1 * GB, 5 * MB, 0.0001) is None


def test_deadline_constrained_choice(analyzer):
    opts = analyzer.options(1 * GB, 5 * MB)
    deadline = opts[7].predicted_time
    chosen = analyzer.cheapest_within_deadline(1 * GB, 5 * MB, deadline)
    assert chosen is not None
    assert chosen.predicted_time <= deadline
    feasible = [o for o in opts if o.predicted_time <= deadline]
    assert chosen.usd == min(o.usd for o in feasible)


def test_deadline_unreachable_returns_none(analyzer):
    assert analyzer.cheapest_within_deadline(10 * GB, 1 * MB, 1.0) is None


def test_pareto_front_no_dominated_points(analyzer):
    opts = analyzer.options(1 * GB, 5 * MB)
    front = analyzer.pareto_front(opts)
    assert front  # never empty
    for a in front:
        for b in front:
            if a is b:
                continue
            dominated = (
                b.predicted_time <= a.predicted_time
                and b.usd <= a.usd
                and (b.predicted_time < a.predicted_time or b.usd < a.usd)
            )
            assert not dominated


def test_knee_lies_on_front_and_minimises_badness(analyzer):
    opts = analyzer.options(1 * GB, 5 * MB)
    front = analyzer.pareto_front(opts)
    knee = analyzer.knee(opts)
    assert knee in front
    assert knee.n_nodes > 1  # parallelism is clearly worth it here
    # Re-derive the knee criterion independently.
    t_lo = min(o.predicted_time for o in front)
    t_hi = max(o.predicted_time for o in front)
    c_lo = min(o.usd for o in front)
    c_hi = max(o.usd for o in front)

    def badness(o):
        return (o.predicted_time - t_lo) / (t_hi - t_lo) + (o.usd - c_lo) / (
            c_hi - c_lo
        )

    assert badness(knee) == pytest.approx(min(badness(o) for o in front))


def test_max_nodes_validation():
    with pytest.raises(ValueError):
        TradeoffAnalyzer(
            TransferTimeModel(), CostModel(PriceBook()), max_nodes=0
        )


@given(
    st.floats(min_value=1 * MB, max_value=100 * GB),
    st.floats(min_value=0.5 * MB, max_value=50 * MB),
    st.floats(min_value=0.05, max_value=0.95),
)
@settings(max_examples=50, deadline=None)
def test_property_budget_never_exceeded(size, thr, gain):
    analyzer = TradeoffAnalyzer(
        TransferTimeModel(gain=gain), CostModel(PriceBook()), max_nodes=12
    )
    opts = analyzer.options(size, thr)
    budget = opts[0].usd * 1.5
    chosen = analyzer.nodes_within_budget(size, thr, budget)
    assert chosen is None or chosen.usd <= budget + 1e-12


@given(
    st.floats(min_value=1 * MB, max_value=100 * GB),
    st.floats(min_value=0.5 * MB, max_value=50 * MB),
)
@settings(max_examples=50, deadline=None)
def test_property_bigger_budget_never_slower(size, thr):
    analyzer = TradeoffAnalyzer(
        TransferTimeModel(gain=0.5), CostModel(PriceBook()), max_nodes=12
    )
    opts = analyzer.options(size, thr)
    lo = analyzer.nodes_within_budget(size, thr, opts[0].usd)
    hi = analyzer.nodes_within_budget(size, thr, opts[0].usd * 10)
    assert lo is not None and hi is not None
    assert hi.predicted_time <= lo.predicted_time + 1e-9
