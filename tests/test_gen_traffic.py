"""Generated traffic programs: schedules, flash crowds, schedule sources."""

import numpy as np
import pytest

from repro.gen.traffic import (
    FlashCrowd,
    RateSchedule,
    SourceProgram,
    TrafficProgram,
    render_rates,
    render_sizes,
)
from repro.simulation.engine import Simulator
from repro.streaming.sources import ScheduleSource


def rng(seed=7):
    return np.random.Generator(np.random.PCG64(seed))


# ----------------------------------------------------------------------
# RateSchedule
# ----------------------------------------------------------------------
def test_schedule_validates():
    with pytest.raises(ValueError, match="resolution"):
        RateSchedule(resolution=0.0, values=(1.0,))
    with pytest.raises(ValueError, match="at least one"):
        RateSchedule(resolution=60.0, values=())


def test_schedule_lookup_and_clamping():
    sched = RateSchedule(resolution=60.0, values=(1.0, 2.0, 3.0))
    assert sched.at(0.0) == 1.0
    assert sched.at(59.9) == 1.0
    assert sched.at(60.0) == 2.0
    assert sched.at(150.0) == 3.0
    # Clamped outside the grid: a source outliving its program keeps
    # emitting at the final rate instead of going dark mid-drain.
    assert sched.at(-5.0) == 1.0
    assert sched.at(10_000.0) == 3.0
    assert sched.horizon == 180.0
    assert sched.mean == 2.0
    assert sched.peak == 3.0


# ----------------------------------------------------------------------
# FlashCrowd
# ----------------------------------------------------------------------
def test_flash_crowd_rise_peak_decay():
    crowd = FlashCrowd(t_peak=1000.0, peak_factor=5.0, rise_s=100.0, decay_s=200.0)
    assert crowd.factor(0.0) == 1.0
    assert crowd.factor(899.0) == 1.0
    assert crowd.factor(950.0) == pytest.approx(3.0)  # halfway up
    assert crowd.factor(1000.0) == pytest.approx(5.0)
    # Exponential decay: monotone back toward 1.0, never below it.
    tail = [crowd.factor(t) for t in (1100.0, 1400.0, 2200.0)]
    assert tail == sorted(tail, reverse=True)
    assert all(f >= 1.0 for f in tail)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def test_render_rates_deterministic_and_positive():
    crowds = [FlashCrowd(t_peak=1800.0, peak_factor=4.0, rise_s=120.0, decay_s=600.0)]
    a = render_rates(rng(3), 3600.0, 60.0, 10.0, 0.6, 86400.0, crowds)
    b = render_rates(rng(3), 3600.0, 60.0, 10.0, 0.6, 86400.0, crowds)
    assert a == b
    assert len(a.values) == 60
    assert all(v > 0 for v in a.values)
    assert render_rates(rng(4), 3600.0, 60.0, 10.0, 0.6, 86400.0, crowds) != a


def test_flash_crowd_lifts_the_peak():
    crowds = [FlashCrowd(t_peak=1800.0, peak_factor=4.0, rise_s=120.0, decay_s=600.0)]
    quiet = render_rates(rng(3), 3600.0, 60.0, 10.0, 0.0, 86400.0, [])
    crowded = render_rates(rng(3), 3600.0, 60.0, 10.0, 0.0, 86400.0, crowds)
    assert crowded.peak > 3.0 * quiet.peak
    # Overlapping crowds multiply through the strongest member, not stack.
    double = render_rates(rng(3), 3600.0, 60.0, 10.0, 0.0, 86400.0, crowds * 2)
    assert double.peak == crowded.peak


def test_render_sizes_drifts_within_amplitude():
    sizes = render_sizes(rng(5), 7200.0, 60.0, 400.0, 0.25, 21600.0)
    assert all(300.0 <= v <= 500.0 for v in sizes.values)
    assert sizes.peak > sizes.mean  # the drift actually moves


# ----------------------------------------------------------------------
# SourceProgram / TrafficProgram
# ----------------------------------------------------------------------
def program(region="NEU", shape="clicks", seed=11):
    r = rng(seed)
    return SourceProgram(
        name=f"{shape}-{region.lower()}",
        region=region,
        shape_name=shape,
        n_keys=4,
        rates=render_rates(r, 1800.0, 60.0, 8.0, 0.3, 86400.0, []),
        sizes=render_sizes(r, 1800.0, 60.0, 400.0, 0.2, 21600.0),
    )


def test_traffic_program_rollups():
    traffic = TrafficProgram(
        sources=(program("NEU"), program("NEU", "sensors"), program("NUS"))
    )
    by_region = traffic.by_region()
    assert sorted(by_region) == ["NEU", "NUS"]
    assert len(by_region["NEU"]) == 2
    assert traffic.mean_rate() == pytest.approx(
        traffic.mean_rate("NEU") + traffic.mean_rate("NUS")
    )
    summary = traffic.summary()
    assert len(summary["sources"]) == 3
    assert summary["peak_rate"] >= summary["mean_rate"]


def test_build_source_emits_reproducibly():
    src_a = program().build_source()
    src_b = program().build_source()
    assert isinstance(src_a, ScheduleSource)

    def collect(source, seed=9):
        sim = Simulator(seed=seed)
        out = []
        source.attach(sim, "NEU", out.extend)
        source.start()
        sim.run_until(300.0)
        source.stop()
        return out

    a, b = collect(src_a), collect(src_b)
    assert len(a) > 0
    assert [r.event_time for r in a] == [r.event_time for r in b]
    assert [r.key for r in a] == [r.key for r in b]
    # Keys come from the workload shape's keyspace.
    assert all(r.key.startswith("/page/") for r in a)


def test_schedule_source_tracks_its_program():
    sched = RateSchedule(resolution=60.0, values=(2.0, 50.0))
    src = ScheduleSource("s", rate_fn=sched.at, keys=["k"], tick=1.0)
    sim = Simulator(seed=1)
    out = []
    src.attach(sim, "NEU", out.extend)
    src.start()
    sim.run_until(120.0)
    src.stop()
    slow = [r for r in out if r.event_time < 60.0]
    fast = [r for r in out if r.event_time >= 60.0]
    # 25x the rate in the second minute must show up in the counts.
    assert len(fast) > 5 * max(1, len(slow))
