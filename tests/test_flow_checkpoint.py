"""Checkpoint store, periodic checkpointer, and window-state snapshots."""

import math

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.core.engine import SageEngine
from repro.flow.checkpoint import Checkpointer, CheckpointStore
from repro.streaming.events import Record
from repro.streaming.operators import WindowedAggregator, builtin_aggregate
from repro.streaming.windows import TumblingWindows


@pytest.fixture
def engine():
    env = CloudEnvironment(seed=9, variability_sigma=0.0, glitches=False)
    eng = SageEngine(env, deployment_spec={"NEU": 1, "NUS": 1})
    eng.start(learning_phase=10.0)
    return eng


# ----------------------------------------------------------------------
# CheckpointStore
# ----------------------------------------------------------------------
def test_store_roundtrip_is_a_copy():
    store = CheckpointStore()
    payload = {"a": [1, 2, 3], "b": {"k": 0.5}}
    size = store.save("agg", payload, now=10.0)
    assert size == store.size_bytes("agg") > 0
    loaded = store.load("agg")
    assert loaded == payload
    assert loaded is not payload  # JSON roundtrip: no shared live object
    loaded["a"].append(4)
    assert store.load("agg") == payload


def test_store_tuples_become_lists():
    # Built-in aggregate states use tuples; their closures only index,
    # so the list that comes back is interchangeable.
    store = CheckpointStore()
    store.save("s", {"state": (3, 1.5)})
    assert store.load("s") == {"state": [3, 1.5]}


def test_store_rejects_unserializable_state():
    store = CheckpointStore()
    with pytest.raises(TypeError):
        store.save("bad", {"fn": lambda: None})
    assert "bad" not in store


def test_store_age_and_names():
    store = CheckpointStore()
    assert store.load("missing") is None
    assert math.isinf(store.age("missing", now=5.0))
    store.save("a", {}, now=10.0)
    store.save("b", {}, now=20.0)
    assert store.age("a", now=25.0) == pytest.approx(15.0)
    assert store.names() == ["a", "b"]
    assert "a" in store
    assert store.saves == 2 and store.loads == 0


# ----------------------------------------------------------------------
# Checkpointer
# ----------------------------------------------------------------------
def test_checkpointer_validation(engine):
    with pytest.raises(ValueError):
        Checkpointer(engine, CheckpointStore(), interval=0.0)


def test_checkpointer_periodic_rounds(engine):
    store = CheckpointStore()
    calls = []
    cp = Checkpointer(engine, store, interval=5.0)
    cp.register("c", lambda: calls.append(1) or {"n": len(calls)})
    cp.start()
    cp.start()  # idempotent
    engine.run_until(engine.sim.now + 26.0)
    assert cp.rounds == 5
    assert len(calls) == 5
    assert store.load("c") == {"n": 5}
    cp.stop()
    engine.run_until(engine.sim.now + 20.0)
    assert cp.rounds == 5  # stopped: no further rounds


def test_checkpointer_none_skips_the_round(engine):
    store = CheckpointStore()
    cp = Checkpointer(engine, store, interval=5.0)
    up = [False]
    cp.register("c", lambda: {"ok": 1} if up[0] else None)
    cp.run_once()
    assert "c" not in store  # component down: round skipped, not crashed
    up[0] = True
    cp.run_once()
    assert store.load("c") == {"ok": 1}


def test_checkpointer_register_last_wins(engine):
    store = CheckpointStore()
    cp = Checkpointer(engine, store, interval=5.0)
    cp.register("c", lambda: {"v": "old"})
    cp.register("c", lambda: {"v": "new"})
    cp.run_once()
    assert store.load("c") == {"v": "new"}
    assert store.saves == 1  # one target, not two


# ----------------------------------------------------------------------
# WindowedAggregator snapshot/restore
# ----------------------------------------------------------------------
def _record(t, key="k", value=1.0):
    return Record(event_time=t, key=key, value=value, origin="NEU")


def test_windowed_aggregator_snapshot_roundtrip():
    agg = WindowedAggregator(TumblingWindows(10.0), builtin_aggregate("mean"))
    for t in (1.0, 2.0, 11.0):
        agg.process(_record(t, value=t))
    agg.advance_watermark(5.0)

    store = CheckpointStore()
    store.save("w", agg.snapshot())
    clone = WindowedAggregator(TumblingWindows(10.0), builtin_aggregate("mean"))
    clone.restore(store.load("w"))

    assert clone.records_seen == agg.records_seen
    assert clone.open_windows == agg.open_windows == 2
    # The restored state must close windows identically to the original
    # (tuple states come back as lists; the aggregate closures only
    # index, so the finalized results are what must agree).
    mean = agg.aggregate.result
    out_orig = agg.advance_watermark(25.0)
    out_clone = clone.advance_watermark(25.0)
    assert [(r.key, mean(r.value.state), r.value.count) for r in out_orig] == [
        (r.key, mean(r.value.state), r.value.count) for r in out_clone
    ]


def test_windowed_aggregator_restore_replaces_watermark():
    agg = WindowedAggregator(TumblingWindows(10.0), builtin_aggregate("count"))
    agg.advance_watermark(50.0)
    snap = agg.snapshot()
    clone = WindowedAggregator(TumblingWindows(10.0), builtin_aggregate("count"))
    clone.restore(snap)
    with pytest.raises(ValueError, match="backwards"):
        clone.advance_watermark(40.0)  # the restored watermark is live
    fresh = WindowedAggregator(TumblingWindows(10.0), builtin_aggregate("count"))
    fresh.restore(fresh.snapshot())  # None watermark roundtrips too
    fresh.advance_watermark(0.0)
