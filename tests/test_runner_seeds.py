"""Deterministic shard-seed derivation, including across process boundaries."""

from __future__ import annotations

import json
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner.seeds import SEED_BITS, derive_seed, shard_key

KEYS = st.one_of(
    st.text(max_size=40),
    st.integers(),
    st.dictionaries(st.text(max_size=8), st.integers(), max_size=4),
)


@given(st.integers(min_value=0, max_value=2**63 - 1), KEYS)
@settings(max_examples=200, deadline=None)
def test_derive_seed_is_pure_and_bounded(root, key):
    a = derive_seed(root, key)
    b = derive_seed(root, key)
    assert a == b
    assert 0 <= a < 2**SEED_BITS


@given(st.integers(min_value=0, max_value=2**32), st.text(max_size=30))
@settings(max_examples=100, deadline=None)
def test_distinct_roots_give_distinct_streams(root, key):
    assert derive_seed(root, key) != derive_seed(root + 1, key)


def test_distinct_shard_names_give_distinct_seeds():
    root = 2013
    seeds = [derive_seed(root, f"shard-{i}") for i in range(512)]
    assert len(set(seeds)) == len(seeds)


def test_shard_key_ignores_dict_order():
    assert shard_key({"a": 1, "b": 2}) == shard_key({"b": 2, "a": 1})
    assert derive_seed(7, {"a": 1, "b": 2}) == derive_seed(7, {"b": 2, "a": 1})


def test_known_vector_pinned():
    # A golden value: if this moves, every cached sweep result and every
    # recorded experiment seed silently changes meaning.
    assert derive_seed(2013, "overload-block") == 7789164181496474646


def test_seeds_stable_across_process_boundary():
    """The same derivation in a fresh interpreter yields the same seeds.

    This is what makes ``--jobs N`` reproducible: workers re-derive
    nothing, but nothing would save us if ``derive_seed`` depended on
    interpreter state (e.g. salted ``hash()``).
    """
    cases = [
        (0, ["shard-0"]),
        (2013, ["overload-block"]),
        (2013, [{"policy": "shed", "duration": 120.0}]),
        (2**62, ["x" * 64, 17]),
    ]
    expected = [derive_seed(root, *parts) for root, parts in cases]
    prog = (
        "import json, sys\n"
        "from repro.runner.seeds import derive_seed\n"
        "cases = json.load(sys.stdin)\n"
        "print(json.dumps([derive_seed(r, *p) for r, p in cases]))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", prog],
        input=json.dumps(cases),
        capture_output=True,
        text=True,
        check=True,
    )
    assert json.loads(out.stdout) == expected
