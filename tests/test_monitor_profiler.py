"""Tests for history profiling and anomaly detection."""

import numpy as np
import pytest

from repro.monitor.history import MetricHistory
from repro.monitor.profiler import HistoryProfiler


def history_from(values, dt=60.0):
    h = MetricHistory(maxlen=100_000)
    for i, v in enumerate(values):
        h.record(i * dt, float(v))
    return h


def test_profile_summary():
    rng = np.random.default_rng(0)
    h = history_from(10.0 + rng.normal(0, 0.5, 500))
    p = HistoryProfiler().profile("thr/x", h)
    assert p.samples == 500
    assert p.mean == pytest.approx(10.0, rel=0.05)
    assert p.p05 < p.p95
    assert p.is_stable()
    assert abs(p.trend_per_hour) < 0.2


def test_profile_detects_trend():
    values = np.linspace(10.0, 20.0, 240)  # rising over 4 hours
    p = HistoryProfiler().profile("thr/x", history_from(values))
    assert p.trend_per_hour == pytest.approx(2.5, rel=0.05)


def test_profile_empty_raises():
    with pytest.raises(ValueError):
        HistoryProfiler().profile("x", MetricHistory())


def test_detect_sustained_drop_not_glitch():
    rng = np.random.default_rng(1)
    base = 10.0 + rng.normal(0, 0.3, 600)
    base[300:] *= 0.5  # sustained halving
    base[100] = 1.0  # one-sample glitch: must not trigger
    profiler = HistoryProfiler(window=30)
    anomalies = profiler.detect_anomalies("thr/x", history_from(base))
    drops = [a for a in anomalies if a.kind == "level-drop"]
    assert len(drops) == 1
    assert 300 * 60 * 0.9 <= drops[0].start_time <= 330 * 60 * 1.1
    assert drops[0].magnitude < 0.65


def test_detect_level_rise():
    values = np.concatenate([np.full(200, 5.0), np.full(200, 12.0)])
    anomalies = HistoryProfiler(window=25).detect_anomalies(
        "x", history_from(values)
    )
    assert any(a.kind == "level-rise" for a in anomalies)


def test_detect_high_variance():
    rng = np.random.default_rng(2)
    quiet = 10.0 + rng.normal(0, 0.1, 200)
    noisy = 10.0 + rng.normal(0, 7.0, 200)
    values = np.abs(np.concatenate([quiet, noisy]))
    anomalies = HistoryProfiler(window=25).detect_anomalies(
        "x", history_from(values)
    )
    assert any(a.kind == "high-variance" for a in anomalies)


def test_no_anomalies_on_stable_signal():
    rng = np.random.default_rng(3)
    values = 10.0 + rng.normal(0, 0.2, 400)
    assert (
        HistoryProfiler(window=30).detect_anomalies("x", history_from(values))
        == []
    )


def test_short_history_is_silent():
    assert HistoryProfiler(window=30).detect_anomalies(
        "x", history_from([1.0] * 10)
    ) == []


def test_profiler_validation():
    with pytest.raises(ValueError):
        HistoryProfiler(window=2)


@pytest.mark.parametrize(
    "drop,rise",
    [(1.5, 0.65), (0.8, 0.8), (0.0, 1.5), (-0.1, 1.5)],
)
def test_profiler_rejects_inverted_thresholds(drop, rise):
    with pytest.raises(ValueError):
        HistoryProfiler(drop_threshold=drop, rise_threshold=rise)


def test_profiler_rejects_nonpositive_variance_threshold():
    with pytest.raises(ValueError):
        HistoryProfiler(variance_threshold=0.0)


def test_high_variance_detected_alongside_level_shift():
    """Regression: a window can be both shifted and noisy — the
    high-variance check must still fire while ``in_anomaly`` is set by
    the level-shift branch."""
    rng = np.random.default_rng(9)
    quiet = 10.0 + rng.normal(0, 0.05, 200)
    # Sustained drop to 40% of baseline AND violent in-window noise.
    shifted_noisy = np.abs(4.0 + rng.normal(0, 3.5, 200))
    values = np.concatenate([quiet, shifted_noisy])
    anomalies = HistoryProfiler(window=25).detect_anomalies(
        "x", history_from(values)
    )
    kinds = {a.kind for a in anomalies}
    assert "level-drop" in kinds
    assert "high-variance" in kinds
    hv = [a for a in anomalies if a.kind == "high-variance"]
    assert all(a.magnitude > 0.5 for a in hv)
    assert all(a.start_time >= 200 * 60 * 0.9 for a in hv)


def test_report_renders():
    rng = np.random.default_rng(4)
    histories = {
        "thr/A->B": history_from(10 + rng.normal(0, 0.5, 200)),
        "thr/A->C": history_from(np.concatenate(
            [np.full(150, 8.0), np.full(150, 3.0)]
        )),
        "empty": MetricHistory(),
    }
    report = HistoryProfiler(window=30).report(histories)
    assert "thr/A->B" in report
    assert "level-drop" in report
    assert "stable" in report and "anomalies" in report
