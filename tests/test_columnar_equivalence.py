"""Columnar record plane ≡ per-record plane, pinned end to end.

The columnar rewrite is only allowed to change *speed*. Every test here
runs the same seeded workload under both planes and demands identical
observable output: window results, latency statistics, loss accounting,
scenario report metrics, and soak digests — including runs with bursts,
shedding, link brownouts, and a mid-run aggregator crash restored from
a checkpoint cut mid-batch.
"""

from __future__ import annotations

import dataclasses
import warnings

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.config import (
    OverloadConfig,
    RecordPlaneConfig,
    SoakConfig,
    default_record_plane,
    set_default_record_plane,
)
from repro.core.engine import SageEngine
from repro.gen.soak import run_soak
from repro.flow.scenario import run_overload
from repro.faults.scenario import run_chaos
from repro.streaming import (
    GeoStreamRuntime,
    PerRecordAdapter,
    PoissonSource,
    Record,
    RecordBatch,
    SageShipping,
)
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.operators import MapOperator, builtin_aggregate
from repro.streaming.windows import TumblingWindows

LEGACY = RecordPlaneConfig(columnar=False)
COLUMNAR = RecordPlaneConfig(columnar=True)


@pytest.fixture
def plane_guard():
    """Restore the process-default record plane after a test flips it."""
    previous = default_record_plane()
    yield
    set_default_record_plane(previous)


def _run_job(plane, operators=None, sources=None, aggregate="mean"):
    env = CloudEnvironment(seed=7)
    engine = SageEngine(env, deployment_spec={"NEU": 2, "WEU": 2, "NUS": 2})
    engine.start()
    job = StreamJob(
        name="equiv",
        sites=[
            SiteSpec(
                region=region,
                sources=sources(region) if sources else [
                    PoissonSource(
                        name=f"p-{region.lower()}",
                        rate=500.0,
                        keys=["a", "b", "c"],
                    )
                ],
                operators=list(operators or []),
            )
            for region in ("NEU", "WEU")
        ],
        aggregation_region="NUS",
        windows=TumblingWindows(10.0),
        aggregate=builtin_aggregate(aggregate),
        record_plane=plane,
    )
    runtime = GeoStreamRuntime(engine, job, SageShipping.factory(n_nodes=2))
    runtime.run_for(60.0)
    return runtime


def _observables(runtime):
    return {
        "results": [
            (r.window.start, r.window.end, r.key, r.value, r.record_count)
            for r in runtime.results
        ],
        "latency": runtime.latency_stats(),
        "wan_bytes": runtime.wan_bytes(),
        "emitted": sum(
            src.records_emitted
            for site in runtime.sites.values()
            for src in site.spec.sources
        ),
        "processed": sum(
            s.records_processed for s in runtime.sites.values()
        ),
    }


def test_poisson_job_identical_across_planes():
    legacy = _observables(_run_job(LEGACY))
    columnar = _observables(_run_job(COLUMNAR))
    assert legacy["results"], "run produced no windows — vacuous test"
    assert columnar == legacy


@pytest.mark.parametrize("aggregate", ["count", "sum", "min", "max", "var"])
def test_builtin_aggregates_identical_across_planes(aggregate):
    legacy = _observables(_run_job(LEGACY, aggregate=aggregate))
    columnar = _observables(_run_job(COLUMNAR, aggregate=aggregate))
    assert legacy["results"], "run produced no windows — vacuous test"
    assert columnar == legacy


class _LegacyDoubler:
    """An operator written against the old one-record-at-a-time protocol."""

    def process(self, record):
        return [
            Record(
                record.event_time,
                record.key,
                record.value * 2.0,
                record.origin,
                record.size_bytes,
            )
        ]


def test_per_record_adapter_preserves_results_and_warns():
    with pytest.warns(DeprecationWarning, match="process_batch"):
        adapted = PerRecordAdapter(_LegacyDoubler())
    assert isinstance(adapted.inner, _LegacyDoubler)

    def run(plane):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            return _observables(_run_job(plane, operators=[_LegacyDoubler()]))

    legacy = run(LEGACY)
    columnar = run(COLUMNAR)
    assert legacy["results"], "run produced no windows — vacuous test"
    assert columnar == legacy


def test_native_batch_operator_matches_per_record_fallback():
    vectorized = MapOperator(
        lambda r: Record(
            r.event_time, "all", r.value, r.origin, r.size_bytes
        ),
        batch_fn=lambda b: b.with_key("all"),
    )
    scalar_only = MapOperator(
        lambda r: Record(
            r.event_time, "all", r.value, r.origin, r.size_bytes
        ),
    )
    fast = _observables(_run_job(COLUMNAR, operators=[vectorized]))
    slow = _observables(_run_job(COLUMNAR, operators=[scalar_only]))
    legacy = _observables(_run_job(LEGACY, operators=[scalar_only]))
    assert fast["results"], "run produced no windows — vacuous test"
    assert fast == slow == legacy


def test_source_chunk_records_only_changes_offer_granularity():
    def sources(region, chunk=None):
        return [
            PoissonSource(
                name=f"p-{region.lower()}",
                rate=500.0,
                keys=["a", "b"],
                chunk_records=chunk,
            )
        ]

    whole = _observables(_run_job(COLUMNAR, sources=lambda r: sources(r)))
    chunked = _observables(
        _run_job(COLUMNAR, sources=lambda r: sources(r, chunk=64))
    )
    assert whole["results"], "run produced no windows — vacuous test"
    assert chunked == whole


def test_record_plane_config_validation_and_round_trip():
    with pytest.raises(ValueError):
        RecordPlaneConfig(chunk_records=0)
    cfg = RecordPlaneConfig(columnar=False, chunk_records=128)
    assert RecordPlaneConfig.from_dict(cfg.to_dict()) == cfg
    with pytest.raises(TypeError):
        set_default_record_plane("columnar")
    previous = set_default_record_plane(cfg)
    try:
        assert default_record_plane() == cfg
    finally:
        set_default_record_plane(previous)


def test_record_batch_round_trips_records():
    records = [
        Record(1.0, "a", 0.5, "NEU", 200.0),
        Record(1.5, "b", -2.0, "NEU", 100.0),
        Record(2.0, "a", 7, "NEU", 50.0),  # non-float value: object dtype
    ]
    batch = RecordBatch.from_records(records)
    assert len(batch) == 3
    assert batch.to_records() == records
    assert [r for r in batch.iter_records()] == records
    view = batch[1:]
    assert view.to_records() == records[1:]
    merged = batch[:1] + batch[1:]
    assert merged.to_records() == records


@pytest.mark.parametrize("policy", ["block", "shed", "degrade"])
def test_overload_scenario_identical_across_planes(policy, plane_guard):
    # 90 s compressed replica of the overload scenario: burst, link
    # brownout, shed/degrade pressure, and an aggregator crash at t=40
    # restored from a checkpoint cut mid-batch at t=30.
    cfg = OverloadConfig(
        policy=policy,
        duration=90.0,
        burst_window=(20.0, 45.0),
        brownout=(25.0, 20.0, 0.1),
        crash_at=40.0,
        restart_after=10.0,
        checkpoint_interval=10.0,
        max_backlog=800,
        base_rate=120.0,
    )
    metrics = {}
    for name, plane in (("legacy", LEGACY), ("columnar", COLUMNAR)):
        set_default_record_plane(plane)
        report = run_overload(cfg)
        metrics[name] = report.metrics
    assert metrics["columnar"] == metrics["legacy"]


def test_chaos_scenario_identical_across_planes(plane_guard):
    from repro.config import ChaosConfig

    cfg = ChaosConfig(duration=90.0, inject=True)
    metrics = {}
    for name, plane in (("legacy", LEGACY), ("columnar", COLUMNAR)):
        set_default_record_plane(plane)
        report = run_chaos(cfg)
        metrics[name] = report.metrics
    assert metrics["columnar"] == metrics["legacy"]


def test_soak_digest_identical_across_planes(plane_guard):
    cfg = SoakConfig(seed=11, hours=0.1, profile="adversarial")
    digests = {}
    for name, plane in (("legacy", LEGACY), ("columnar", COLUMNAR)):
        set_default_record_plane(plane)
        digests[name] = run_soak(cfg).digest
    assert digests["columnar"] == digests["legacy"]


def test_stream_job_record_plane_field_round_trips():
    field_names = {f.name for f in dataclasses.fields(StreamJob)}
    assert "record_plane" in field_names
    job = StreamJob(
        name="pinning",
        sites=[
            SiteSpec(region="NEU", sources=[PoissonSource("s", rate=10.0)])
        ],
        aggregation_region="NUS",
        record_plane=LEGACY,
    )
    assert job.record_plane == LEGACY
