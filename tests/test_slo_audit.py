"""Continuous SLO / invariant auditor."""

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.config import ChaosConfig, OverloadConfig
from repro.core.engine import SageEngine
from repro.faults.scenario import run_chaos
from repro.flow.scenario import run_overload
from repro.obs import AuditReport, Observer, SLOAuditor, Violation
from repro.obs.audit import AUDIT_KINDS
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.operators import builtin_aggregate
from repro.streaming.runtime import GeoStreamRuntime, WindowResult
from repro.streaming.shipping import SageShipping
from repro.streaming.sources import PoissonSource
from repro.streaming.windows import TumblingWindows, Window


# ----------------------------------------------------------------------
# Stub runtime: drives each check in isolation
# ----------------------------------------------------------------------
class _StubAggregator:
    late_dropped = 0
    late_partial_records = 0


class _StubShipping:
    records_abandoned = 0


class _StubSite:
    def __init__(self, watermark=0.0):
        self.watermark = watermark
        self.aggregator = _StubAggregator()
        self.shipping = _StubShipping()
        self.records_shed = 0


class _StubRuntime:
    def __init__(self):
        self.sites = {"NEU": _StubSite()}
        self.results = []
        self.aggregator = _StubAggregator()
        self._ingested = 0

    def records_ingested(self):
        return self._ingested

    def records_in_results(self):
        return sum(r.record_count for r in self.results)

    def records_shed(self):
        return sum(s.records_shed for s in self.sites.values())


def result(start=0.0, end=10.0, key="k", emitted_at=15.0, count=3):
    return WindowResult(
        window=Window(start, end),
        key=key,
        value=count,
        record_count=count,
        sites=1,
        emitted_at=emitted_at,
    )


@pytest.fixture
def engine():
    env = CloudEnvironment(seed=71, variability_sigma=0.0, glitches=False)
    eng = SageEngine(
        env, deployment_spec={"NEU": 2, "NUS": 2}, observer=Observer()
    )
    eng.start(learning_phase=30.0)
    return eng


def test_validates_check_interval(engine):
    with pytest.raises(ValueError, match="check_interval"):
        SLOAuditor(engine, _StubRuntime(), check_interval=0.0)


def test_clean_stub_run_zero_violations(engine):
    runtime = _StubRuntime()
    runtime._ingested = 3
    runtime.results.append(result())
    auditor = SLOAuditor(engine, runtime, max_latency_s=60.0)
    auditor.check_now()
    report = auditor.finish()
    assert report.clean
    assert report.checks == 2  # explicit check + finish sweep
    assert report.violations == []
    assert report.to_dict()["counts_by_kind"] == {}


def test_watermark_regression_flagged_once(engine):
    runtime = _StubRuntime()
    auditor = SLOAuditor(engine, runtime)
    runtime.sites["NEU"].watermark = 50.0
    auditor.check_now()
    runtime.sites["NEU"].watermark = 40.0  # moved backwards
    auditor.check_now()
    auditor.check_now()  # stable at the lower value: no second flag
    report = auditor.finish(quiescent=False)
    assert [v.kind for v in report.violations] == ["watermark_regression"]
    violation = report.violations[0]
    assert violation.target == "NEU"
    assert violation.value == 40.0 and violation.limit == 50.0


def test_duplicate_window_flagged_once(engine):
    runtime = _StubRuntime()
    runtime.results = [result(), result()]  # same (window, key) twice
    auditor = SLOAuditor(engine, runtime)
    auditor.check_now()
    auditor.check_now()  # results re-scanned: still one violation
    report = auditor.finish(quiescent=False)
    assert [v.kind for v in report.violations] == ["duplicate_window"]
    assert "emitted 2 times" in report.violations[0].detail


def test_latency_slo_breach(engine):
    runtime = _StubRuntime()
    runtime.results = [
        result(emitted_at=12.0),  # 2 s latency: fine
        result(start=10.0, end=20.0, emitted_at=95.0),  # 75 s: breach
    ]
    auditor = SLOAuditor(engine, runtime, max_latency_s=30.0)
    auditor.check_now()
    auditor.check_now()  # latency checked once per window identity
    report = auditor.finish(quiescent=False)
    assert [v.kind for v in report.violations] == ["latency_slo"]
    assert report.violations[0].value == 75.0
    assert report.violations[0].limit == 30.0


def test_loss_identity_violation_on_unexplained_loss(engine):
    runtime = _StubRuntime()
    runtime._ingested = 100
    runtime.results.append(result(count=50))
    runtime.sites["NEU"].records_shed = 10  # explains 10 of 50 lost
    auditor = SLOAuditor(engine, runtime)
    report = auditor.finish(quiescent=True)
    kinds = [v.kind for v in report.violations]
    assert kinds == ["loss_identity"]
    assert "lost 50 != explained 10" in report.violations[0].detail
    # The identity holds once the loss is fully accounted.
    runtime.sites["NEU"].records_shed = 50
    assert SLOAuditor(engine, runtime).finish(quiescent=True).clean


def test_loss_identity_skipped_when_not_quiescent(engine):
    runtime = _StubRuntime()
    runtime._ingested = 100  # nothing emitted yet: all in flight
    report = SLOAuditor(engine, runtime).finish(quiescent=False)
    assert report.clean


def test_cost_slo_breach(engine):
    runtime = _StubRuntime()
    runtime._ingested = 1000
    runtime.results.append(result(count=1000))  # loss identity holds
    engine.env.meter.charge_egress(50e9, context="NEU->NUS")
    auditor = SLOAuditor(engine, runtime, max_usd_per_1k=1e-6)
    report = auditor.finish(quiescent=True)
    assert [v.kind for v in report.violations] == ["cost_slo"]
    assert report.violations[0].value > 1e-6


def test_violations_reach_counter_and_flight_ring(engine):
    runtime = _StubRuntime()
    runtime.results = [result(), result()]
    auditor = SLOAuditor(engine, runtime)
    auditor.check_now()
    obs = engine.observer
    counter = obs.counter("audit_violations_total", kind="duplicate_window")
    assert counter.value == 1
    # emit_fault routes audit events into the flight-recorder ring.
    events = [
        e for e in obs.recorder.events
        if e.get("fault", "").startswith("audit.")
    ]
    assert events
    assert events[0]["fault"] == "audit.duplicate_window"


def test_periodic_checks_ride_virtual_time(engine):
    runtime = _StubRuntime()
    auditor = SLOAuditor(engine, runtime, check_interval=5.0).start()
    engine.run_until(engine.sim.now + 26.0)
    assert auditor.checks >= 5
    report = auditor.finish()
    checks_at_finish = report.checks
    engine.run_until(engine.sim.now + 20.0)  # stopped: no more ticks
    assert auditor.checks == checks_at_finish


def test_report_shapes():
    report = AuditReport(
        checks=3,
        violations=[
            Violation(1.0, "latency_slo", "k@0", 9.0, 5.0, "late"),
            Violation(2.0, "latency_slo", "k@10", 8.0, 5.0, "late"),
        ],
    )
    assert not report.clean
    assert report.counts_by_kind() == {"latency_slo": 2}
    payload = report.to_dict()
    assert payload["violation_count"] == 2
    assert payload["violations"][0]["kind"] == "latency_slo"
    assert all(kind in AUDIT_KINDS for kind in payload["counts_by_kind"])


# ----------------------------------------------------------------------
# Against the real runtime
# ----------------------------------------------------------------------
def _streaming_runtime(seed=13):
    env = CloudEnvironment(seed=seed, variability_sigma=0.0, glitches=False)
    engine = SageEngine(env, deployment_spec={"NEU": 2, "NUS": 2})
    engine.start(learning_phase=60.0)
    job = StreamJob(
        name="audit",
        sites=[SiteSpec("NEU", [PoissonSource("p", rate=100.0, keys=["k"])])],
        aggregation_region="NUS",
        windows=TumblingWindows(10.0),
        aggregate=builtin_aggregate("count"),
    )
    runtime = GeoStreamRuntime(engine, job, SageShipping.factory(n_nodes=2))
    return engine, runtime


def _drain(engine, runtime):
    """Quiet sources, let open windows close, stop, let grace pass —
    the loss identity only holds once the pipe is empty."""
    for site in runtime.sites.values():
        site.stop_sources()
    engine.run_until(engine.sim.now + runtime.job.watermark_lag + 15.0)
    runtime.stop()
    engine.run_until(engine.sim.now + runtime.job.finalize_grace + 30.0)


def test_clean_streaming_run_passes_audit():
    engine, runtime = _streaming_runtime()
    auditor = SLOAuditor(engine, runtime, max_latency_s=120.0).start()
    runtime.start()
    engine.run_until(engine.sim.now + 80.0)
    _drain(engine, runtime)
    report = auditor.finish()
    assert report.checks > 10
    assert report.clean, report.to_dict()


def test_injected_watermark_regression_is_caught():
    engine, runtime = _streaming_runtime(seed=17)
    auditor = SLOAuditor(engine, runtime, check_interval=2.0).start()
    site = runtime.sites["NEU"]

    def corrupt():
        site._watermark -= 30.0  # simulate a clock / restore bug

    engine.sim.schedule(40.0, corrupt)
    runtime.run_for(80.0)
    report = auditor.finish(quiescent=False)
    kinds = {v.kind for v in report.violations}
    assert "watermark_regression" in kinds


def test_injected_latency_breach_is_caught():
    engine, runtime = _streaming_runtime(seed=19)
    # No real deployment can emit within a millisecond of window close.
    auditor = SLOAuditor(engine, runtime, max_latency_s=0.001).start()
    runtime.start()
    engine.run_until(engine.sim.now + 60.0)
    _drain(engine, runtime)
    report = auditor.finish()
    assert any(v.kind == "latency_slo" for v in report.violations)


# ----------------------------------------------------------------------
# Scenario integration: strict_slo gates report.clean
# ----------------------------------------------------------------------
def test_chaos_report_carries_audit_and_cost():
    report = run_chaos(ChaosConfig(seed=5, duration=120.0, strict_slo=True))
    assert report.clean
    assert report.slo_violations == 0
    assert report.audit["checks"] > 0
    assert report.audit["clean"] is True
    assert report.cost["total_usd"] > 0
    assert "auditor:" in report.describe()
    assert "(strict)" in report.describe()


def test_strict_slo_fails_scenario_on_breach():
    cfg = ChaosConfig(seed=5, duration=120.0, strict_slo=True,
                      slo_max_latency_s=0.001)
    report = run_chaos(cfg)
    assert report.slo_violations > 0
    assert not report.clean
    # The same breach without strict_slo is reported but not fatal.
    lax = run_chaos(ChaosConfig(seed=5, duration=120.0,
                                slo_max_latency_s=0.001))
    assert lax.slo_violations > 0
    assert lax.clean


def test_overload_report_carries_audit():
    report = run_overload(
        OverloadConfig(policy="shed", seed=5, duration=120.0, strict_slo=True)
    )
    assert report.clean
    assert report.slo_violations == 0
    assert report.audit["checks"] > 0


def test_slo_config_validation():
    with pytest.raises(ValueError, match="slo_max_latency_s"):
        ChaosConfig(slo_max_latency_s=-1.0)
    with pytest.raises(ValueError, match="slo_max_usd_per_1k"):
        OverloadConfig(slo_max_usd_per_1k=0.0)


# ----------------------------------------------------------------------
# Continuous loss bound + incremental scanning (the soak additions)
# ----------------------------------------------------------------------
def test_continuous_loss_bound_clean_mid_run(engine):
    """Records still in flight break the *identity* but not the *bound*:
    counted + explained <= ingested must hold at every tick."""
    runtime = _StubRuntime()
    runtime._ingested = 10
    runtime.results.append(result(count=3))  # 7 in flight, nothing wrong
    auditor = SLOAuditor(engine, runtime, continuous_loss=True)
    auditor.check_now()
    report = auditor.finish(quiescent=False)
    assert report.clean


def test_continuous_loss_bound_catches_overcounting(engine):
    runtime = _StubRuntime()
    runtime._ingested = 2
    runtime.results.append(result(count=3))  # counted 3 > ingested 2
    auditor = SLOAuditor(engine, runtime, continuous_loss=True)
    auditor.check_now()
    report = auditor.finish(quiescent=False)
    assert not report.clean
    kinds = [v.kind for v in report.violations]
    assert "loss_identity" in kinds
    assert "mid-run" in report.violations[0].detail


def test_without_continuous_loss_bound_is_not_checked(engine):
    runtime = _StubRuntime()
    runtime._ingested = 2
    runtime.results.append(result(count=3))
    auditor = SLOAuditor(engine, runtime)
    auditor.check_now()
    report = auditor.finish(quiescent=False)
    assert report.clean  # the bound is a soak opt-in


def test_incremental_scan_persists_across_ticks(engine):
    """The cursor advances per tick; duplicate (window, key) pairs are
    still caught even when the two emissions land in different ticks."""
    runtime = _StubRuntime()
    runtime._ingested = 6
    runtime.results.append(result(key="k"))
    auditor = SLOAuditor(engine, runtime)
    auditor.check_now()
    assert not auditor.violations
    runtime.results.append(result(key="k"))  # same slot, later tick
    auditor.check_now()
    assert [v.kind for v in auditor.violations] == ["duplicate_window"]
    report = auditor.finish(quiescent=False)
    # The final sweep does not re-scan: still exactly one violation.
    assert len(report.violations) == 1
