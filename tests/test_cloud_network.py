"""Tests for the fluid flow network — the heart of the substrate."""

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.cloud.network import Flow, Topology
from repro.simulation.engine import Simulator
from repro.simulation.units import GB, KB, MB


def make_env(**kwargs):
    defaults = dict(
        seed=77, variability_sigma=0.0, diurnal_amplitude=0.0, glitches=False
    )
    defaults.update(kwargs)
    return CloudEnvironment(**defaults)


def run_flow(env, path, size, **kwargs):
    done = []
    flow = Flow(path, size, on_complete=lambda f: done.append(env.now), **kwargs)
    env.network.start_flow(flow)
    env.sim.run_until(env.now + 50_000)
    assert done, f"flow did not complete: {flow!r}"
    return done[0], flow


# ----------------------------------------------------------------------
# Construction / validation
# ----------------------------------------------------------------------
def test_flow_validation():
    env = make_env()
    vm = env.provision("NEU", "Small")[0]
    vm2 = env.provision("NUS", "Small")[0]
    with pytest.raises(ValueError):
        Flow([vm], 1.0)
    with pytest.raises(ValueError):
        Flow([vm, vm2], 0.0)
    with pytest.raises(ValueError):
        Flow([vm, vm2], 1.0, streams=0)
    with pytest.raises(ValueError):
        Flow([vm, vm2], 1.0, intrusiveness=0.0)
    with pytest.raises(ValueError):
        Flow([vm, vm2], 1.0, rate_cap=0.0)


def test_topology_default_mesh():
    topo = Topology.build()
    assert len(topo.links) == 30
    link = topo.link("NEU", "NUS")
    assert link.capacity(0.0) > 0
    with pytest.raises(KeyError):
        topo.link("NEU", "XXX")


def test_same_continent_faster_than_cross():
    topo = Topology.build()
    eu = topo.link("NEU", "WEU").base_capacity
    cross = topo.link("NEU", "NUS").base_capacity
    assert eu > cross


# ----------------------------------------------------------------------
# Single-flow behaviour
# ----------------------------------------------------------------------
def test_intra_dc_flow_is_nic_bound():
    env = make_env()
    a, b = env.provision("NEU", "Small", 2)
    t, flow = run_flow(env, [a, b], 100 * MB)
    nic = a.size.nic_bytes_per_s
    assert 100 * MB / t == pytest.approx(nic, rel=0.01)


def test_wan_single_stream_is_tcp_window_bound():
    env = make_env()
    a = env.provision("NEU", "Small")[0]
    b = env.provision("NUS", "Small")[0]
    t, flow = run_flow(env, [a, b], 50 * MB, streams=1)
    rtt = env.topology.rtt("NEU", "NUS")
    expected = env.network.tcp_window / rtt
    assert 50 * MB / t == pytest.approx(expected, rel=0.02)


def test_parallel_streams_raise_throughput_until_nic():
    env = make_env()
    a = env.provision("NEU", "Small")[0]
    b = env.provision("NUS", "Small")[0]
    t1, _ = run_flow(env, [a, b], 50 * MB, streams=1)
    env2 = make_env()
    a2 = env2.provision("NEU", "Small")[0]
    b2 = env2.provision("NUS", "Small")[0]
    t4, _ = run_flow(env2, [a2, b2], 50 * MB, streams=4)
    assert t4 < t1 / 3.0  # 4 streams ≈ 4× where NIC/WAN allow
    env3 = make_env()
    a3 = env3.provision("NEU", "Small")[0]
    b3 = env3.provision("NUS", "Small")[0]
    t64, _ = run_flow(env3, [a3, b3], 50 * MB, streams=64)
    nic_time = 50 * MB / a3.size.nic_bytes_per_s
    assert t64 == pytest.approx(nic_time, rel=0.02)  # NIC is the ceiling


def test_intrusiveness_caps_rate():
    env = make_env()
    a, b = env.provision("NEU", "Small", 2)
    t_full, _ = run_flow(env, [a, b], 50 * MB, intrusiveness=1.0)
    env2 = make_env()
    a2, b2 = env2.provision("NEU", "Small", 2)
    t_tenth, _ = run_flow(env2, [a2, b2], 50 * MB, intrusiveness=0.1)
    assert t_tenth == pytest.approx(10 * t_full, rel=0.05)


def test_rate_cap_respected():
    env = make_env()
    a, b = env.provision("NEU", "Small", 2)
    t, _ = run_flow(env, [a, b], 50 * MB, rate_cap=1 * MB)
    assert 50 * MB / t == pytest.approx(1 * MB, rel=0.02)


def test_degraded_vm_slows_flow():
    env = make_env()
    a, b = env.provision("NEU", "Small", 2)
    a.degrade(0.5)
    t, _ = run_flow(env, [a, b], 50 * MB)
    assert 50 * MB / t == pytest.approx(0.5 * a.size.nic_bytes_per_s, rel=0.02)


# ----------------------------------------------------------------------
# Sharing
# ----------------------------------------------------------------------
def test_two_flows_share_one_nic_fairly():
    env = make_env()
    a, b, c = env.provision("NEU", "Small", 3)
    done = {}
    f1 = Flow([a, b], 50 * MB, on_complete=lambda f: done.setdefault(1, env.now))
    f2 = Flow([a, c], 50 * MB, on_complete=lambda f: done.setdefault(2, env.now))
    env.network.start_flow(f1)
    env.network.start_flow(f2)
    assert f1.rate == pytest.approx(f2.rate)
    assert f1.rate == pytest.approx(a.size.nic_bytes_per_s / 2, rel=0.01)
    env.sim.run_until(10_000)
    assert done[1] == pytest.approx(done[2], rel=0.01)


def test_wan_capacity_shared_across_vm_pairs():
    env = make_env()
    senders = env.provision("NEU", "Small", 12)
    receivers = env.provision("NUS", "Small", 12)
    flows = []
    for s, r in zip(senders, receivers):
        f = Flow([s, r], 1 * GB, streams=8)
        env.network.start_flow(f)
        flows.append(f)
    total = sum(f.rate for f in flows)
    cap = env.topology.link("NEU", "NUS").capacity(env.now)
    assert total == pytest.approx(cap, rel=0.01)  # WAN link saturated
    per_flow_nic = senders[0].size.nic_bytes_per_s
    assert all(f.rate < per_flow_nic for f in flows)


def test_freed_capacity_is_reallocated():
    env = make_env()
    a, b, c = env.provision("NEU", "Small", 3)
    f1 = Flow([a, b], 10 * MB)
    f2 = Flow([a, c], 200 * MB)
    env.network.start_flow(f1)
    env.network.start_flow(f2)
    half = a.size.nic_bytes_per_s / 2
    assert f2.rate == pytest.approx(half, rel=0.01)
    env.sim.run_until(10 * MB / half + 1.0)  # f1 finished by now
    assert f1.done
    assert f2.rate == pytest.approx(a.size.nic_bytes_per_s, rel=0.01)


def test_cancel_flow_releases_bandwidth():
    env = make_env()
    a, b, c = env.provision("NEU", "Small", 3)
    f1 = Flow([a, b], 1 * GB)
    f2 = Flow([a, c], 1 * GB)
    env.network.start_flow(f1)
    env.network.start_flow(f2)
    env.sim.run_until(5.0)
    env.network.cancel_flow(f1)
    assert f1.cancelled
    assert f2.rate == pytest.approx(a.size.nic_bytes_per_s, rel=0.01)
    assert f1.transferred > 0  # progress up to the cancel is kept


# ----------------------------------------------------------------------
# Multi-hop
# ----------------------------------------------------------------------
def test_multi_hop_bottleneck_is_slowest_hop():
    env = make_env()
    a = env.provision("NEU", "Small")[0]
    relay = env.provision("EUS", "Small")[0]
    b = env.provision("NUS", "Small")[0]
    t, flow = run_flow(env, [a, relay, b], 50 * MB, streams=2)
    rtts = [env.topology.rtt("NEU", "EUS"), env.topology.rtt("EUS", "NUS")]
    per_hop = [2 * env.network.tcp_window / r for r in rtts]
    expected = min(per_hop) * env.network.relay_efficiency
    assert 50 * MB / t == pytest.approx(expected, rel=0.03)


def test_relay_with_short_hops_beats_long_direct_rtt():
    """Splitting a long-RTT path at a midpoint raises the TCP ceiling —
    the physical effect multi-datacenter routing exploits."""
    env = make_env()
    a = env.provision("NEU", "Small")[0]
    relay = env.provision("EUS", "Small")[0]
    b = env.provision("SUS", "Small")[0]
    t_direct, _ = run_flow(env, [a, b], 20 * MB, streams=1)
    env2 = make_env()
    a2 = env2.provision("NEU", "Small")[0]
    relay2 = env2.provision("EUS", "Small")[0]
    b2 = env2.provision("SUS", "Small")[0]
    t_relay, _ = run_flow(env2, [a2, relay2, b2], 20 * MB, streams=1)
    assert t_relay < t_direct


# ----------------------------------------------------------------------
# Accounting and invariants
# ----------------------------------------------------------------------
def test_flow_bookkeeping():
    env = make_env()
    a, b = env.provision("NEU", "Small", 2)
    t, flow = run_flow(env, [a, b], 10 * MB)
    assert flow.done
    assert flow.transferred == pytest.approx(10 * MB)
    assert flow.mean_throughput(env.now) > 0
    assert env.network.flows_completed == 1
    assert env.network.bytes_completed == pytest.approx(10 * MB)


def test_double_start_rejected():
    env = make_env()
    a, b = env.provision("NEU", "Small", 2)
    f = Flow([a, b], 1 * MB)
    env.network.start_flow(f)
    with pytest.raises(ValueError):
        env.network.start_flow(f)


def test_isolated_rate_matches_actual_single_flow():
    env = make_env()
    a = env.provision("NEU", "Small")[0]
    b = env.provision("NUS", "Small")[0]
    iso = env.network.isolated_rate([a, b], streams=4)
    t, _ = run_flow(env, [a, b], 50 * MB, streams=4)
    assert 50 * MB / t == pytest.approx(iso, rel=0.02)


def test_variable_capacity_changes_completion():
    """With variability on, link capacity drifts and rates follow."""
    env = CloudEnvironment(seed=3, variability_sigma=0.4, glitches=False)
    senders = env.provision("NEU", "Small", 8)
    receivers = env.provision("NUS", "Small", 8)
    flows = []
    for s, r in zip(senders, receivers):
        f = Flow([s, r], 5 * GB, streams=8)
        env.network.start_flow(f)
        flows.append(f)
    rates = []
    for _ in range(30):
        env.sim.run_until(env.now + 60)
        rates.append(sum(f.rate for f in flows))
    alive = [r for r in rates if r > 0]
    assert max(alive) / min(alive) > 1.15  # the saturated rate drifted
