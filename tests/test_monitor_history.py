"""Unit tests for metric history."""

import numpy as np
import pytest

from repro.monitor.history import MetricHistory


def test_record_and_stats():
    h = MetricHistory()
    for i, v in enumerate([1.0, 2.0, 3.0, 4.0]):
        h.record(float(i), v)
    assert len(h) == 4
    assert h.mean() == pytest.approx(2.5)
    assert h.std() == pytest.approx(np.std([1, 2, 3, 4]))
    assert h.last.value == 4.0


def test_time_order_enforced():
    h = MetricHistory()
    h.record(10.0, 1.0)
    with pytest.raises(ValueError):
        h.record(5.0, 2.0)


def test_since_filter():
    h = MetricHistory()
    for i in range(10):
        h.record(float(i), float(i))
    assert h.mean(since=5.0) == pytest.approx(7.0)
    assert list(h.times(since=8.0)) == [8.0, 9.0]


def test_ring_buffer_caps_memory():
    h = MetricHistory(maxlen=100)
    for i in range(1000):
        h.record(float(i), float(i))
    assert len(h) == 100
    assert h.values().min() == 900.0


def test_cv_and_percentile():
    h = MetricHistory()
    for i in range(1, 101):
        h.record(float(i), float(i))
    assert h.percentile(50) == pytest.approx(50.5)
    assert 0 < h.coefficient_of_variation() < 1


def test_empty_history_stats_are_nan():
    h = MetricHistory()
    assert np.isnan(h.mean())
    assert np.isnan(h.coefficient_of_variation())
    assert h.last is None


def test_resample_hourly():
    h = MetricHistory(maxlen=10_000)
    for i in range(7200):  # two hours of 1 Hz samples
        h.record(float(i), 1.0 if i < 3600 else 3.0)
    rows = h.resample_hourly()
    assert len(rows) == 2
    (t0, m0, s0), (t1, m1, s1) = rows
    assert t0 == 0.0 and t1 == 3600.0
    assert m0 == pytest.approx(1.0) and m1 == pytest.approx(3.0)
    assert s0 == pytest.approx(0.0)


def test_invalid_maxlen():
    with pytest.raises(ValueError):
        MetricHistory(maxlen=0)
