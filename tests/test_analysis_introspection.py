"""Tests for the Introspection-as-a-Service reports."""

import pytest

from repro.analysis.introspection import introspection_report, link_sla
from repro.simulation.units import GB, MB
from repro.workloads.synthetic import fresh_engine


@pytest.fixture(scope="module")
def engine():
    eng = fresh_engine(
        seed=97,
        spec={"NEU": 10, "NUS": 10, "WEU": 3},
        learning_phase=1800.0,  # half an hour of samples
    )
    return eng


def test_link_sla_fields(engine):
    sla = link_sla(engine.monitor, "NEU", "NUS")
    assert sla.samples > 10
    assert sla.p05 <= sla.p50 <= sla.p95
    assert 0.0 <= sla.consistency <= 1.0
    assert sla.grade in "ABCD"


def test_link_sla_requires_samples(engine):
    with pytest.raises(ValueError, match="no samples"):
        link_sla(engine.monitor, "NEU", "XXX")


def test_capacity_appears_after_saturating_load(engine):
    assert link_sla(engine.monitor, "NEU", "NUS").capacity is None
    # Light load teaches nothing (utilisation is not capacity)...
    mt = engine.decisions.transfer("NEU", "NUS", 256 * MB, n_nodes=2)
    while not mt.done:
        engine.run_until(engine.sim.now + 10)
    assert link_sla(engine.monitor, "NEU", "NUS").capacity is None
    # ...saturating the link does (a naive 10-route plan over-subscribes
    # it; the decision manager itself avoids doing so on purpose).
    from repro.baselines import StaticParallel

    StaticParallel(n_nodes=10, streams=8).run(engine, "NEU", "NUS", 2 * GB)
    sla = link_sla(engine.monitor, "NEU", "NUS")
    assert sla.capacity is not None
    assert sla.capacity > 5 * MB


def test_report_renders_all_links(engine):
    report = introspection_report(engine.monitor)
    assert "Introspection-as-a-Service" in report
    for pair in ("NEU->NUS", "NUS->NEU", "NEU->WEU"):
        assert pair.split("->")[0] in report
    assert "grade" in report


def test_stable_cloud_gets_good_grades():
    eng = fresh_engine(
        seed=98,
        spec={"NEU": 2, "NUS": 2},
        learning_phase=1200.0,
        variability_sigma=0.0,
        glitches=False,
    )
    sla = link_sla(eng.monitor, "NEU", "NUS")
    # The link itself is perfectly stable; the residual inconsistency is
    # pure probe dispersion, so the grade stays in the top band.
    assert sla.grade in ("A", "B")
    assert sla.consistency > 0.85
