"""Unit tests for the declarative job descriptions."""

import pytest

from repro.streaming.batching import SizeBatchPolicy
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.operators import builtin_aggregate
from repro.streaming.sources import PoissonSource
from repro.streaming.windows import TumblingWindows


def site(region="NEU"):
    return SiteSpec(region, [PoissonSource(f"s-{region}", rate=1.0)])


def test_site_spec_requires_sources():
    with pytest.raises(ValueError, match="at least one source"):
        SiteSpec("NEU", [])


def test_job_defaults():
    job = StreamJob(name="j", sites=[site()], aggregation_region="NUS")
    assert job.windows.length == 10.0
    assert job.aggregate.name == "mean"
    assert not job.ship_raw_records
    policy = job.batch_policy_factory()
    assert policy.should_flush(10**9, 1, 0.0)  # hybrid default exists


def test_job_rejects_duplicate_sites():
    with pytest.raises(ValueError, match="duplicate site regions"):
        StreamJob(
            name="j",
            sites=[site("NEU"), site("NEU")],
            aggregation_region="NUS",
        )


def test_job_rejects_no_sites():
    with pytest.raises(ValueError, match="at least one site"):
        StreamJob(name="j", sites=[], aggregation_region="NUS")


def test_job_rejects_negative_grace():
    with pytest.raises(ValueError):
        StreamJob(
            name="j",
            sites=[site()],
            aggregation_region="NUS",
            finalize_grace=-1.0,
        )


def test_job_custom_components():
    job = StreamJob(
        name="custom",
        sites=[site("NEU"), site("WEU")],
        aggregation_region="NUS",
        windows=TumblingWindows(5.0),
        aggregate=builtin_aggregate("max"),
        batch_policy_factory=lambda: SizeBatchPolicy(1000.0),
        ship_raw_records=True,
    )
    assert job.site_regions() == ["NEU", "WEU"]
    assert job.aggregate.name == "max"
    assert isinstance(job.batch_policy_factory(), SizeBatchPolicy)
    # Each call builds a fresh policy (one batcher per site).
    assert job.batch_policy_factory() is not job.batch_policy_factory()
