"""Config dataclasses, deprecation shims, and the ScenarioReport surface."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.baselines.blob_relay import BlobRelay
from repro.baselines.direct import EndPoint2EndPoint
from repro.baselines.gridftp import GridFtpLike
from repro.baselines.parallel_static import StaticParallel
from repro.baselines.shortest_path import (
    DynamicShortestPath,
    StaticShortestPath,
)
from repro.config import (
    BlobRelayConfig,
    ChaosConfig,
    DirectConfig,
    GridFtpConfig,
    OverloadConfig,
    ParallelStaticConfig,
    ShortestPathConfig,
)
from repro.faults.plan import FaultPlan
from repro.faults.scenario import run_chaos
from repro.flow.scenario import run_overload
from repro.report import ScenarioReport, canonical_json

FAST_OVERLOAD = dict(duration=60.0, crash_at=40.0, burst_window=(20.0, 30.0))
FAST_CHAOS = dict(duration=60.0)


# ----------------------------------------------------------------------
# Dict round trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "cls",
    [
        ChaosConfig,
        OverloadConfig,
        DirectConfig,
        ParallelStaticConfig,
        ShortestPathConfig,
        BlobRelayConfig,
        GridFtpConfig,
    ],
)
def test_config_json_roundtrip(cls):
    cfg = cls()
    wire = json.loads(json.dumps(cfg.to_dict()))  # tuples become lists
    assert cls.from_dict(wire) == cfg


def test_tuple_fields_restored_from_json_lists():
    cfg = OverloadConfig.from_dict(
        {"burst_window": [10.0, 20.0], "site_regions": ["SEA", "SEA2"]}
    )
    assert cfg.burst_window == (10.0, 20.0)
    assert cfg.site_regions == ("SEA", "SEA2")


def test_unknown_keys_rejected():
    with pytest.raises(TypeError, match="unknown fields"):
        ChaosConfig.from_dict({"typo_field": 1})


def test_invalid_values_rejected():
    with pytest.raises(ValueError):
        ChaosConfig(duration=-1.0)
    with pytest.raises(ValueError):
        OverloadConfig(burst_factor=0.5)
    with pytest.raises(ValueError):
        DirectConfig(streams=0)


def test_fault_plan_dict_roundtrip():
    plan = FaultPlan().crash_vm(10.0, "vm-1", restart_after=5.0)
    wire = json.loads(json.dumps(plan.to_dict()))
    clone = FaultPlan.from_dict(wire)
    assert clone.to_dict() == plan.to_dict()


# ----------------------------------------------------------------------
# Deprecated call paths: warn, but produce identical results
# ----------------------------------------------------------------------
def test_run_overload_legacy_kwargs_warn_and_match():
    with pytest.deprecated_call():
        legacy = run_overload(policy="shed", seed=99, **FAST_OVERLOAD)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        cfg = OverloadConfig(policy="shed", seed=99, **FAST_OVERLOAD)
        modern = run_overload(cfg)
    assert legacy.canonical_json() == modern.canonical_json()


def test_run_chaos_legacy_kwargs_warn_and_match():
    with pytest.deprecated_call():
        legacy = run_chaos(seed=7, inject=False, **FAST_CHAOS)
    cfg = ChaosConfig(seed=7, inject=False, **FAST_CHAOS)
    modern = run_chaos(cfg)
    assert legacy.canonical_json() == modern.canonical_json()


def test_run_chaos_positional_seed_still_accepted():
    with pytest.deprecated_call():
        report = run_chaos(11, duration=60.0, inject=False)
    assert report.seed == 11


@pytest.mark.parametrize(
    ("cls", "legacy_kwargs", "attr", "expected"),
    [
        (EndPoint2EndPoint, {"streams": 3}, "streams", 3),
        (StaticParallel, {"n_nodes": 2}, "n_nodes", 2),
        (StaticShortestPath, {"max_hops": 2}, "max_hops", 2),
        (DynamicShortestPath, {"replan_interval": 5.0}, "replan_interval", 5.0),
        (BlobRelay, {"parallel_objects": 3}, "parallel_objects", 3),
        (GridFtpLike, {"endpoints": 3}, "endpoints", 3),
    ],
)
def test_baseline_legacy_kwargs_warn(cls, legacy_kwargs, attr, expected):
    with pytest.deprecated_call():
        baseline = cls(**legacy_kwargs)
    assert getattr(baseline, attr) == expected


def test_baseline_config_path_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        baseline = EndPoint2EndPoint(DirectConfig(streams=2))
    assert baseline.streams == 2
    assert baseline.config == DirectConfig(streams=2)


# ----------------------------------------------------------------------
# ScenarioReport
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def overload_report():
    return run_overload(OverloadConfig(policy="block", seed=5, **FAST_OVERLOAD))


def test_scenario_report_shape(overload_report):
    r = overload_report
    assert isinstance(r, ScenarioReport)
    assert r.scenario == "overload"
    assert r.seed == 5
    assert r.config["policy"] == "block"
    assert r.virtual_seconds > 0
    assert r.wall_seconds > 0


def test_scenario_report_delegates_to_details(overload_report):
    # Legacy attribute access must keep working on the wrapped result.
    assert overload_report.policy == "block"
    assert overload_report.ingested > 0
    with pytest.raises(AttributeError, match="no attribute"):
        _ = overload_report.definitely_not_a_field


def test_canonical_dict_excludes_host_dependent_fields(overload_report):
    canon = overload_report.canonical_dict()
    assert "wall_seconds" not in canon
    assert "metrics" not in canon
    assert canon["scenario"] == "overload"
    assert canon["seed"] == 5
    # Must be pure JSON (no tuples, NaN, or dataclasses left).
    parsed = json.loads(overload_report.canonical_json())
    assert parsed == json.loads(canonical_json(canon))


def test_describe_is_human_readable(overload_report):
    text = overload_report.describe()
    assert "overload" in text
    assert "seed" in text
