"""Unit tests for the event queue."""

import pytest

from repro.simulation.events import Event, EventQueue


def test_pop_orders_by_time():
    q = EventQueue()
    fired = []
    q.push(3.0, fired.append, ("c",))
    q.push(1.0, fired.append, ("a",))
    q.push(2.0, fired.append, ("b",))
    times = []
    while True:
        e = q.pop()
        if e is None:
            break
        times.append(e.time)
    assert times == [1.0, 2.0, 3.0]


def test_same_time_fifo_order():
    """Events at the same instant fire in scheduling order (seq)."""
    q = EventQueue()
    q.push(1.0, lambda: None, (), priority=0)
    first = q.pop()
    q2 = EventQueue()
    events = [q2.push(5.0, lambda i=i: i, ()) for i in range(10)]
    popped = [q2.pop() for _ in range(10)]
    assert [e.seq for e in popped] == sorted(e.seq for e in events)


def test_priority_breaks_time_ties():
    q = EventQueue()
    q.push(1.0, lambda: None, (), priority=5)
    high = q.push(1.0, lambda: None, (), priority=-5)
    assert q.pop() is high


def test_cancelled_events_are_skipped():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None, ())
    e2 = q.push(2.0, lambda: None, ())
    e1.cancel()
    assert q.pop() is e2
    assert q.pop() is None


def test_len_ignores_cancelled():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None, ())
    q.push(2.0, lambda: None, ())
    assert len(q) == 2
    e1.cancel()
    assert len(q) == 1


def test_peek_time_skips_cancelled():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None, ())
    q.push(4.0, lambda: None, ())
    assert q.peek_time() == 1.0
    e1.cancel()
    assert q.peek_time() == 4.0


def test_bool_semantics():
    q = EventQueue()
    assert not q
    e = q.push(1.0, lambda: None, ())
    assert q
    e.cancel()
    assert not q


def test_empty_pop_returns_none():
    assert EventQueue().pop() is None
    assert EventQueue().peek_time() is None


def test_event_ordering_operator():
    a = Event(1.0, 0, 0, lambda: None, ())
    b = Event(1.0, 0, 1, lambda: None, ())
    c = Event(0.5, 9, 2, lambda: None, ())
    assert a < b
    assert c < a
