"""Tests for the fault-injection subsystem (plans and the injector)."""

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.cloud.network import Flow
from repro.core.engine import SageEngine
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    chaos_scenario,
)
from repro.simulation.units import MB


def make_engine(seed=401):
    env = CloudEnvironment(seed=seed, variability_sigma=0.0, glitches=False)
    engine = SageEngine(env, deployment_spec={"NEU": 3, "NUS": 3})
    engine.start(learning_phase=60.0)
    return engine


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
def test_fault_event_validation():
    with pytest.raises(ValueError, match="time"):
        FaultEvent(-1.0, FaultKind.VM_CRASH, "vm-1")
    with pytest.raises(ValueError, match="kind"):
        FaultEvent(0.0, "vm.explode", "vm-1")


def test_plan_builders_validate():
    plan = FaultPlan()
    with pytest.raises(ValueError, match="restart_after"):
        plan.crash_vm(0.0, "vm-1", restart_after=0.0)
    with pytest.raises(ValueError, match="duration"):
        plan.link_down(0.0, "NEU", "NUS", duration=-5.0)
    with pytest.raises(ValueError, match="scale"):
        plan.flap_link(0.0, "NEU", "NUS", scale=-0.1, duration=10.0)
    with pytest.raises(ValueError, match="duration"):
        plan.flap_link(0.0, "NEU", "NUS", scale=0.5, duration=0.0)
    with pytest.raises(ValueError, match="non-empty"):
        plan.partition(0.0, [], ["NUS"])
    with pytest.raises(ValueError, match="probability"):
        plan.drop_batches(0.0, 10.0, probability=0.0)
    with pytest.raises(ValueError, match="probability"):
        plan.duplicate_batches(0.0, 10.0, probability=1.5)


def test_plan_events_stay_time_ordered():
    plan = (
        FaultPlan()
        .link_down(50.0, "NEU", "NUS", duration=20.0)
        .crash_vm(10.0, "vm-1", restart_after=100.0)
    )
    times = [e.time for e in plan]
    assert times == sorted(times)
    assert len(plan) == 4  # down+up, crash+restart
    assert "vm.crash" in plan.describe()


def test_random_plan_is_deterministic():
    args = (["vm-1", "vm-2", "vm-3"], [("NEU", "NUS"), ("NUS", "NEU")], 600.0)
    a = FaultPlan.random(21, *args)
    b = FaultPlan.random(21, *args)
    assert a.events == b.events
    assert len(a) > 0
    c = FaultPlan.random(22, *args)
    assert a.events != c.events


def test_chaos_scenario_shape():
    with pytest.raises(ValueError, match="two sender VMs"):
        chaos_scenario(["only-one"], ("NEU", "NUS"))
    plan = chaos_scenario(["vm-1", "vm-2", "vm-3"], ("NEU", "NUS"))
    kinds = [e.kind for e in plan]
    assert kinds.count(FaultKind.VM_CRASH) == 2
    assert kinds.count(FaultKind.VM_RESTART) == 2
    assert FaultKind.LINK_DOWN in kinds and FaultKind.LINK_UP in kinds
    assert FaultKind.BATCH_DUP in kinds


# ----------------------------------------------------------------------
# Injector
# ----------------------------------------------------------------------
def test_injector_crash_and_restore_vm():
    engine = make_engine()
    vm = engine.deployment.vms("NEU")[0]
    vm.degrade(0.5)  # restore() must also clear prior degradation
    plan = FaultPlan().crash_vm(10.0, vm.vm_id, restart_after=20.0)
    injector = FaultInjector(engine, plan).arm()
    t0 = engine.sim.now
    engine.run_until(t0 + 15.0)
    assert vm.failed and not vm.alive
    assert vm.uplink_capacity == 0.0 and vm.downlink_capacity == 0.0
    engine.run_until(t0 + 35.0)
    assert vm.alive and vm.health == 1.0
    kinds = [f.kind for f in injector.log]
    assert kinds == [FaultKind.VM_CRASH, FaultKind.VM_RESTART]
    # Plan times are relative to arming, not absolute clock positions.
    assert injector.log[0].time == pytest.approx(t0 + 10.0)
    assert injector.log[1].time == pytest.approx(t0 + 30.0)


def test_injector_link_down_and_up():
    engine = make_engine()
    link = engine.env.topology.link("NEU", "NUS")
    FaultInjector(
        engine, FaultPlan().link_down(5.0, "NEU", "NUS", duration=10.0)
    ).arm()
    t0 = engine.sim.now
    engine.run_until(t0 + 7.0)
    assert link.capacity(engine.sim.now) == 0.0
    engine.run_until(t0 + 20.0)
    assert link.capacity(engine.sim.now) > 0


def test_injector_flap_scales_then_restores():
    engine = make_engine()
    link = engine.env.topology.link("NEU", "NUS")
    nominal = link.capacity(engine.sim.now)
    injector = FaultInjector(
        engine, FaultPlan().flap_link(2.0, "NEU", "NUS", scale=0.1,
                                      duration=10.0)
    ).arm()
    t0 = engine.sim.now
    engine.run_until(t0 + 5.0)
    assert link.fault_scale == 0.1
    # The diurnal process drifts a little; the flap still dominates.
    assert link.capacity(engine.sim.now) == pytest.approx(0.1 * nominal, rel=0.05)
    engine.run_until(t0 + 15.0)
    assert link.fault_scale == 1.0
    assert link.capacity(engine.sim.now) == pytest.approx(nominal, rel=0.05)
    assert [f.kind for f in injector.log] == [
        FaultKind.LINK_FLAP, FaultKind.LINK_UP
    ]


def test_injector_partition_cuts_both_directions():
    engine = make_engine()
    there = engine.env.topology.link("NEU", "NUS")
    back = engine.env.topology.link("NUS", "NEU")
    FaultInjector(
        engine, FaultPlan().partition(1.0, ["NEU"], ["NUS"], duration=5.0)
    ).arm()
    t0 = engine.sim.now
    engine.run_until(t0 + 3.0)
    assert there.capacity(engine.sim.now) == 0.0
    assert back.capacity(engine.sim.now) == 0.0
    engine.run_until(t0 + 10.0)
    assert there.capacity(engine.sim.now) > 0
    assert back.capacity(engine.sim.now) > 0


def test_injector_arms_once():
    engine = make_engine()
    injector = FaultInjector(engine, FaultPlan()).arm()
    assert engine.faults is injector
    with pytest.raises(RuntimeError, match="armed"):
        injector.arm()


def test_batch_drop_and_duplicate_windows():
    engine = make_engine()
    plan = (
        FaultPlan()
        .drop_batches(0.0, 30.0, origin="NEU")
        .duplicate_batches(0.0, 30.0, origin="WEU")
    )
    injector = FaultInjector(engine, plan).arm()
    engine.run_until(engine.sim.now + 1.0)
    assert injector.intercept_batch("NEU", 1) == "drop"
    assert injector.intercept_batch("WEU", 1) == "duplicate"
    assert injector.intercept_batch("EUS", 1) == "deliver"
    engine.run_until(engine.sim.now + 40.0)  # windows expired
    assert injector.intercept_batch("NEU", 2) == "deliver"
    assert injector.batches_dropped == 1
    assert injector.batches_duplicated == 1
    report = injector.report()
    assert report.batches_dropped == 1
    assert "batches dropped in flight: 1" in report.describe()


def test_injector_log_is_deterministic_per_seed():
    def run(seed):
        engine = make_engine(seed=404)
        vm_ids = [vm.vm_id for vm in engine.deployment.vms("NEU")]
        plan = FaultPlan.random(seed, vm_ids, [("NEU", "NUS")], horizon=120.0)
        injector = FaultInjector(engine, plan).arm()
        engine.run_until(engine.sim.now + 400.0)
        return injector.log

    assert run(31) == run(31)


def test_flow_stall_detection_and_recovery():
    env = CloudEnvironment(seed=9, variability_sigma=0.0, glitches=False)
    a = env.provision("NEU", "Small")[0]
    b = env.provision("NUS", "Small")[0]
    stalls = []
    env.network.on_stall = stalls.append
    flow = Flow([a, b], 200 * MB, streams=4)
    env.network.start_flow(flow)
    env.sim.run_until(5.0)
    assert flow.rate > 0
    env.topology.link("NEU", "NUS").set_down()
    env.network.notify_change()
    # Notified exactly once, even across several refresh intervals.
    env.sim.run_until(5.0 + env.network.stall_timeout + 25.0)
    assert stalls == [flow]
    assert flow in env.network.stalled_flows()
    env.topology.link("NEU", "NUS").set_up()
    env.network.notify_change()
    env.sim.run_until(100_000.0)
    assert flow.done
    assert flow.stalled_since is None
