"""Unit tests for the VM catalog."""

import pytest

from repro.cloud.vm import VM, VM_SIZES
from repro.simulation.units import MBPS


def test_catalog_sizes():
    assert set(VM_SIZES) == {"Small", "Medium", "Large", "ExtraLarge"}
    assert VM_SIZES["Small"].nic_mbps == pytest.approx(100)
    assert VM_SIZES["ExtraLarge"].nic_mbps == pytest.approx(800)


def test_prices_scale_with_size():
    assert (
        VM_SIZES["Small"].usd_per_hour
        < VM_SIZES["Medium"].usd_per_hour
        < VM_SIZES["Large"].usd_per_hour
        < VM_SIZES["ExtraLarge"].usd_per_hour
    )


def test_vm_capacity_tracks_health():
    vm = VM("vm-1", "NEU", VM_SIZES["Small"])
    nominal = vm.uplink_capacity
    assert nominal == pytest.approx(100 * MBPS)
    vm.degrade(0.4)
    assert vm.uplink_capacity == pytest.approx(0.4 * nominal)
    assert vm.downlink_capacity == pytest.approx(0.4 * nominal)
    vm.restore()
    assert vm.uplink_capacity == pytest.approx(nominal)


@pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
def test_degrade_rejects_bad_health(bad):
    vm = VM("vm-1", "NEU", VM_SIZES["Small"])
    with pytest.raises(ValueError):
        vm.degrade(bad)


def test_vm_identity_by_id():
    a = VM("same", "NEU", VM_SIZES["Small"])
    b = VM("same", "NUS", VM_SIZES["Medium"])
    c = VM("other", "NEU", VM_SIZES["Small"])
    assert a == b
    assert hash(a) == hash(b)
    assert a != c
