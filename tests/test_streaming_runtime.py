"""Integration tests for the geo-streaming runtime."""

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.core.engine import SageEngine
from repro.simulation.units import KB, MB
from repro.streaming.batching import HybridBatchPolicy
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.operators import FilterOperator, builtin_aggregate
from repro.streaming.runtime import GeoStreamRuntime, LatencyStats
from repro.streaming.shipping import BlobShipping, DirectShipping, SageShipping
from repro.streaming.sources import PoissonSource
from repro.streaming.windows import TumblingWindows


def make_engine(seed=13):
    env = CloudEnvironment(seed=seed, variability_sigma=0.0, glitches=False)
    engine = SageEngine(
        env, deployment_spec={"NEU": 3, "WEU": 3, "EUS": 3, "NUS": 3}
    )
    engine.start(learning_phase=120.0)
    return engine


def make_job(rate=200.0, sites=("NEU", "WEU"), window=10.0, **kwargs):
    return StreamJob(
        name="t",
        sites=[
            SiteSpec(
                region,
                [PoissonSource(f"src-{region}", rate=rate, keys=["k1", "k2"])],
            )
            for region in sites
        ],
        aggregation_region="NUS",
        windows=TumblingWindows(window),
        aggregate=builtin_aggregate("count"),
        **kwargs,
    )


def test_end_to_end_counts_are_exact():
    engine = make_engine()
    runtime = GeoStreamRuntime(engine, make_job(), SageShipping.factory(n_nodes=2))
    runtime.run_for(100.0)
    total_counted = sum(r.value for r in runtime.results)
    ingested = runtime.records_ingested()
    # Every ingested record whose window closed must be counted exactly once.
    assert total_counted > 0
    assert total_counted <= ingested
    assert total_counted >= 0.7 * ingested  # tail windows still open


def test_results_have_all_sites():
    engine = make_engine()
    t0 = engine.sim.now  # streaming starts after the learning phase
    runtime = GeoStreamRuntime(engine, make_job(), SageShipping.factory(n_nodes=2))
    runtime.run_for(80.0)
    full_windows = [r for r in runtime.results if r.window.end <= t0 + 60.0]
    assert full_windows
    assert all(r.sites == 2 for r in full_windows)


def test_latency_composition_is_sane():
    engine = make_engine()
    job = make_job(watermark_lag=2.0, finalize_grace=4.0)
    runtime = GeoStreamRuntime(engine, job, SageShipping.factory(n_nodes=2))
    runtime.run_for(100.0)
    stats = runtime.latency_stats()
    assert stats.count > 0
    # Lower bound: lag + grace. Upper bound: plus batching + shipping slack.
    assert stats.p50 >= 6.0
    assert stats.p95 < 30.0


def test_operators_applied_before_aggregation():
    engine = make_engine()
    t0 = engine.sim.now
    job = make_job()
    job.sites[0].operators.append(FilterOperator(lambda r: False))  # drop site 0
    runtime = GeoStreamRuntime(engine, job, SageShipping.factory(n_nodes=2))
    runtime.run_for(60.0)
    full = [r for r in runtime.results if r.window.end <= t0 + 40.0]
    assert full
    assert all(r.sites == 1 for r in full)  # only site 1 contributed


def test_overload_turns_into_latency_not_loss():
    engine = make_engine()
    job = make_job(rate=2000.0)
    runtime = GeoStreamRuntime(
        engine, job, SageShipping.factory(n_nodes=2),
        per_vm_records_per_s=200.0,  # grossly undersized sites
    )
    runtime.run_for(60.0)
    assert any(s.max_backlog > 0 for s in runtime.sites.values())
    counted = sum(r.value for r in runtime.results)
    processed = sum(s.records_processed for s in runtime.sites.values())
    closed = [r for r in runtime.results]
    # Slow, but nothing counted twice and nothing silently dropped:
    emitted_windows = {(r.window, r.key) for r in closed}
    assert len(emitted_windows) == len(closed)
    assert counted <= processed


def test_ship_raw_records_mode_more_wan_bytes():
    engine1 = make_engine(seed=40)
    r1 = GeoStreamRuntime(
        engine1, make_job(), SageShipping.factory(n_nodes=2)
    )
    r1.run_for(60.0)
    engine2 = make_engine(seed=40)
    job_raw = make_job(ship_raw_records=True)
    r2 = GeoStreamRuntime(engine2, job_raw, SageShipping.factory(n_nodes=2))
    r2.run_for(60.0)
    # Local aggregation reduces WAN volume by a large factor.
    assert r2.wan_bytes() > 5 * r1.wan_bytes()
    # And the raw-shipping mode still produces (aggregator-side) results.
    assert r2.results


def test_direct_and_blob_backends_work():
    for factory in (DirectShipping.factory(), BlobShipping.factory()):
        engine = make_engine(seed=17)
        runtime = GeoStreamRuntime(engine, make_job(), factory)
        runtime.run_for(60.0)
        assert runtime.results
        assert runtime.wan_bytes() > 0


def test_runtime_validates_regions():
    engine = make_engine()
    job = StreamJob(
        name="bad",
        sites=[SiteSpec("NEU", [PoissonSource("s", rate=1.0)])],
        aggregation_region="SUS",  # no VMs there in this deployment
    )
    with pytest.raises(ValueError, match="aggregation region"):
        GeoStreamRuntime(engine, job, SageShipping.factory())


def test_throughput_accessor():
    engine = make_engine()
    runtime = GeoStreamRuntime(engine, make_job(), SageShipping.factory(n_nodes=2))
    runtime.run_for(50.0)
    assert runtime.throughput(50.0) > 0
    with pytest.raises(ValueError):
        runtime.throughput(0.0)


def test_latency_stats_empty():
    stats = LatencyStats.from_results([])
    assert stats.count == 0
    assert not stats  # the empty sentinel is falsy
    assert stats.describe() == "latency: no results emitted"
    empty = LatencyStats.empty()
    assert empty.count == 0 and not empty
    import math

    assert math.isnan(empty.p99)


def test_latency_stats_single_result():
    from repro.streaming.runtime import WindowResult
    from repro.streaming.windows import Window

    result = WindowResult(
        window=Window(0.0, 10.0),
        key="k",
        value=1,
        record_count=3,
        sites=1,
        emitted_at=14.0,
    )
    stats = LatencyStats.from_results([result])
    assert stats
    assert stats.count == 1
    # Degenerate distribution: every percentile is the one latency.
    assert stats.p50 == stats.p95 == stats.p99 == stats.max == 4.0
    assert "p99 4.0s" in stats.describe()
