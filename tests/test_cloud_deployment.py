"""Unit tests for provisioning, leases and the environment facade."""

import pytest

from repro.cloud.deployment import CloudEnvironment, Deployment
from repro.simulation.units import HOUR


@pytest.fixture
def env():
    return CloudEnvironment(seed=9, variability_sigma=0.0, glitches=False)


def test_provision_adds_to_deployment(env):
    vms = env.provision("NEU", "Small", 3)
    assert len(vms) == 3
    assert env.deployment.vms("NEU") == vms
    assert env.deployment.size() == 3
    assert env.deployment.regions() == ["NEU"]


def test_provision_validates(env):
    with pytest.raises(KeyError):
        env.provision("XYZ", "Small")
    with pytest.raises(ValueError):
        env.provision("NEU", "Small", 0)


def test_vm_ids_unique(env):
    vms = env.provision("NEU", "Small", 5) + env.provision("NUS", "Medium", 5)
    assert len({vm.vm_id for vm in vms}) == 10


def test_release_bills_elapsed_time(env):
    vm = env.provision("NEU", "Small")[0]
    env.sim.run_until(2 * HOUR)
    usd = env.release(vm)
    assert usd == pytest.approx(0.06 * 2)
    assert env.deployment.size() == 0
    with pytest.raises(KeyError):
        env.release(vm)


def test_finalize_bills_all_leases(env):
    env.provision("NEU", "Small", 2)
    env.provision("NUS", "Medium", 1)
    env.sim.run_until(HOUR)
    env.finalize()
    assert env.meter.vm_usd == pytest.approx(0.06 * 2 + 0.12)
    assert env.leased_vms() == []


def test_custom_deployment_object(env):
    dep = Deployment("extra")
    env.provision("WEU", "Small", 2, deployment=dep)
    assert dep.size() == 2
    assert env.deployment.size() == 0
    env.release(dep.vms()[0], deployment=dep)
    assert dep.size() == 1


def test_deployment_repr_and_vms():
    dep = Deployment("x")
    assert dep.vms() == []
    assert dep.vms("NEU") == []


def test_blob_store_per_region(env):
    assert set(env.blobs) == {"NEU", "WEU", "NUS", "SUS", "EUS", "WUS"}
    assert env.blob("NEU").region_code == "NEU"
