"""The unified public surface: ``repro`` / ``repro.api`` re-exports."""

from __future__ import annotations

import pytest

import repro
import repro.api as api
from repro.report import ScenarioReport, StreamReport


def test_package_all_names_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_api_all_names_resolve():
    for name in api.__all__:
        assert getattr(api, name) is not None, name


def test_package_reexports_are_the_api_objects():
    for name in repro.__all__:
        if name in {"__version__", "SageEngine"}:
            continue
        assert getattr(repro, name) is getattr(api, name), name


def test_run_experiment_by_name():
    report = repro.run_experiment(
        "overload",
        {"policy": "shed", "duration": 60.0, "crash_at": None, "brownout": None},
        seed=31,
    )
    assert isinstance(report, ScenarioReport)
    assert report.scenario == "overload"
    assert report.seed == 31
    assert report.config["policy"] == "shed"


def test_run_experiment_unknown_scenario():
    with pytest.raises(ValueError, match="unknown scenario"):
        repro.run_experiment("nope")


def test_run_experiment_rejects_foreign_config():
    with pytest.raises(TypeError):
        repro.run_experiment("overload", object())


def test_default_suite_shape():
    tasks = repro.default_suite(duration=60.0)
    names = [t.name for t in tasks]
    assert names == [
        "chaos-inject",
        "chaos-baseline",
        "overload-block",
        "overload-shed",
        "overload-degrade",
    ]
    assert all(t.config["duration"] == 60.0 for t in tasks)


def test_sage_session_facade_runs_a_transfer():
    session = repro.SageSession({"NEU": 1, "WEU": 1}, seed=4)
    try:
        result = session.transfer("NEU", "WEU", size=16 * 1024 * 1024)
    finally:
        session.close()
    assert isinstance(result, repro.TransferResult)
    assert result.size == 16 * 1024 * 1024
    assert result.seconds > 0
    assert result.throughput > 0


def test_stream_report_surface_exists():
    assert hasattr(StreamReport, "from_runtime")
