"""Unit tests for table rendering and experiment records."""

import pytest

from repro.analysis.experiments import ExperimentRecord, ShapeCheck
from repro.analysis.tables import format_row, render_table


def test_format_row_floats_and_strings():
    assert format_row([1.23456, "x", 7], precision=2) == ["1.23", "x", "7"]


def test_render_table_alignment():
    out = render_table(
        ["name", "value"],
        [["a", 1.0], ["long-name", 22.5]],
        title="T",
    )
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    # All data rows have the same width.
    assert len(lines[3]) == len(lines[4])


def test_render_table_rejects_ragged_rows():
    with pytest.raises(ValueError, match="columns"):
        render_table(["a", "b"], [["only-one"]])


def test_experiment_record_checks_and_verdict():
    rec = ExperimentRecord("EX", "example", seed=1, parameters={"k": 2})
    rec.check("always true", True, "detail")
    assert rec.all_passed
    rec.note("a note")
    out = rec.render()
    assert "[PASS] always true — detail" in out
    assert "SHAPE OK" in out
    assert "k=2" in out
    rec.assert_shape()  # no raise

    rec.check("fails", False)
    assert not rec.all_passed
    assert "SHAPE MISMATCH" in rec.render()
    with pytest.raises(AssertionError, match="shape mismatch"):
        rec.assert_shape()


def test_shape_check_render():
    assert ShapeCheck("c", True).render() == "  [PASS] c"
    assert ShapeCheck("c", False, "why").render() == "  [FAIL] c — why"


def test_experiment_record_to_dict_is_json_safe():
    import json

    rec = ExperimentRecord("EX", "example", seed=1, parameters={"w": (60, 90)})
    rec.check("ok", True, "d")
    rec.note("n")
    wire = json.loads(json.dumps(rec.to_dict()))
    assert wire["exp_id"] == "EX"
    assert wire["parameters"] == {"w": "(60, 90)"}
    assert wire["checks"] == [{"claim": "ok", "passed": True, "detail": "d"}]
    assert wire["all_passed"] is True
