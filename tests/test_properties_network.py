"""Hypothesis property tests on the fluid max-min allocation.

The allocator must uphold three invariants for *any* set of concurrent
flows: feasibility (no resource over its capacity), cap-respect (no flow
above its private ceiling), and max-min efficiency (a flow below its cap
is blocked by at least one saturated resource — nobody can be raised
without lowering someone else).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.deployment import CloudEnvironment
from repro.cloud.network import Flow
from repro.simulation.units import GB, MB

_EPS = 1e-6

REGIONS = ["NEU", "WEU", "NUS", "EUS"]


def build_env() -> CloudEnvironment:
    return CloudEnvironment(
        seed=7, variability_sigma=0.0, diurnal_amplitude=0.0, glitches=False
    )


flow_specs = st.lists(
    st.tuples(
        st.integers(0, 3),  # src region index
        st.integers(0, 3),  # dst region index
        st.integers(0, 2),  # src vm index
        st.integers(0, 2),  # dst vm index
        st.integers(1, 8),  # streams
        st.sampled_from([0.25, 0.5, 1.0]),  # intrusiveness
        st.booleans(),  # relay through EUS?
    ),
    min_size=1,
    max_size=12,
)


def materialise(env, specs) -> list[Flow]:
    vms = {r: env.provision(r, "Small", 3) for r in REGIONS}
    flows = []
    for si, di, svm, dvm, streams, intr, relay in specs:
        src = vms[REGIONS[si]][svm]
        dst = vms[REGIONS[di]][dvm]
        if src is dst:
            continue
        path = [src, dst]
        if relay and REGIONS[si] != "EUS" and REGIONS[di] != "EUS":
            path = [src, vms["EUS"][2], dst]
        flows.append(
            Flow(path, 1 * GB, streams=streams, intrusiveness=intr)
        )
    return flows


def resource_usage(env, flows):
    """Recompute per-resource usage from allocated rates."""
    usage: dict[object, float] = {}
    caps: dict[object, float] = {}
    for f in flows:
        for vm in f.path[:-1]:
            key = ("up", vm.vm_id)
            usage[key] = usage.get(key, 0.0) + f.rate
            caps[key] = vm.uplink_capacity
        for vm in f.path[1:]:
            key = ("down", vm.vm_id)
            usage[key] = usage.get(key, 0.0) + f.rate
            caps[key] = vm.downlink_capacity
        for a, b in f.hops():
            if a.region_code != b.region_code:
                key = ("wan", a.region_code, b.region_code)
                usage[key] = usage.get(key, 0.0) + f.rate
                caps[key] = env.topology.link(
                    a.region_code, b.region_code
                ).capacity(env.now)
    return usage, caps


@given(flow_specs)
@settings(max_examples=60, deadline=None)
def test_property_allocation_feasible_and_capped(specs):
    env = build_env()
    flows = materialise(env, specs)
    if not flows:
        return
    for f in flows:
        env.network.start_flow(f)
    usage, caps = resource_usage(env, env.network.flows)
    # Feasibility: no resource above capacity.
    for key, used in usage.items():
        assert used <= caps[key] * (1 + 1e-9) + _EPS, key
    # Cap-respect: no flow above its private ceiling.
    for f in env.network.flows:
        assert f.rate <= env.network.flow_cap(f) * (1 + 1e-9) + _EPS
    # Non-negative rates, and at least someone is moving.
    assert all(f.rate >= 0 for f in env.network.flows)
    assert any(f.rate > 0 for f in env.network.flows)


@given(flow_specs)
@settings(max_examples=40, deadline=None)
def test_property_maxmin_no_free_lunch(specs):
    """A flow below its cap must sit on at least one saturated resource."""
    env = build_env()
    flows = materialise(env, specs)
    if not flows:
        return
    for f in flows:
        env.network.start_flow(f)
    usage, caps = resource_usage(env, env.network.flows)
    saturated = {
        key for key, used in usage.items() if used >= caps[key] * (1 - 1e-6)
    }
    for f in env.network.flows:
        if f.rate < env.network.flow_cap(f) * (1 - 1e-6):
            resources = set()
            for vm in f.path[:-1]:
                resources.add(("up", vm.vm_id))
            for vm in f.path[1:]:
                resources.add(("down", vm.vm_id))
            for a, b in f.hops():
                if a.region_code != b.region_code:
                    resources.add(("wan", a.region_code, b.region_code))
            assert resources & saturated, (
                f"{f!r} runs below its cap but no resource it uses is "
                f"saturated"
            )


@given(flow_specs, st.floats(min_value=1.0, max_value=500.0))
@settings(max_examples=25, deadline=None)
def test_property_conservation_of_bytes(specs, horizon):
    """Settled progress equals the integral of allocated rates: total
    transferred never exceeds what time × rate allows, and completed
    flows carry exactly their size."""
    env = build_env()
    flows = materialise(env, specs)
    if not flows:
        return
    for f in flows:
        env.network.start_flow(f)
    env.sim.run_until(horizon)
    for f in flows:
        assert -_EPS <= f.transferred <= f.size + _EPS
        if f.done:
            assert f.transferred == pytest.approx(f.size)
        # No flow can beat its ceiling integrated over time.
        assert f.transferred <= env.network.flow_cap(f) * horizon * 1.5 + MB
