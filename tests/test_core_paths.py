"""Unit + property tests for multi-datacenter path selection."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.paths import (
    MultiPathSelector,
    PathAllocation,
    TransferSchema,
    path_bottleneck,
    widest_path,
)


def mesh(weights: dict[tuple[str, str], float]):
    return dict(weights)


SIMPLE = {
    ("A", "B"): 5.0,
    ("A", "C"): 8.0,
    ("C", "B"): 9.0,
    ("A", "D"): 2.0,
    ("D", "B"): 2.0,
}


# ----------------------------------------------------------------------
# widest_path
# ----------------------------------------------------------------------
def test_widest_prefers_relay_when_wider():
    # Direct A->B has width 5; A->C->B has width 8.
    assert widest_path(SIMPLE, "A", "B") == ["A", "C", "B"]


def test_widest_prefers_direct_when_wider():
    g = dict(SIMPLE)
    g[("A", "B")] = 10.0
    assert widest_path(g, "A", "B") == ["A", "B"]


def test_widest_unreachable_is_none():
    assert widest_path({("A", "B"): 1.0}, "B", "A") is None
    assert widest_path({}, "A", "B") is None


def test_widest_rejects_equal_endpoints():
    with pytest.raises(ValueError):
        widest_path(SIMPLE, "A", "A")


def test_widest_respects_max_hops():
    g = {("A", "X"): 10.0, ("X", "Y"): 10.0, ("Y", "B"): 10.0, ("A", "B"): 1.0}
    assert widest_path(g, "A", "B", max_hops=3) == ["A", "X", "Y", "B"]
    assert widest_path(g, "A", "B", max_hops=1) == ["A", "B"]


def test_widest_skips_nan_and_zero_links():
    g = {("A", "B"): float("nan"), ("A", "C"): 1.0, ("C", "B"): 1.0}
    assert widest_path(g, "A", "B") == ["A", "C", "B"]


def test_path_bottleneck():
    assert path_bottleneck(SIMPLE, ["A", "C", "B"]) == 8.0
    assert path_bottleneck(SIMPLE, ["A", "B"]) == 5.0
    assert path_bottleneck(SIMPLE, ["A", "Z"]) != path_bottleneck(
        SIMPLE, ["A", "B"]
    )  # NaN for unknown link
    with pytest.raises(ValueError):
        path_bottleneck(SIMPLE, ["A"])


def brute_force_widest(graph, src, dst, max_hops):
    nodes = {n for pair in graph for n in pair}
    best, best_width = None, -1.0
    for k in range(0, max_hops):
        for mids in itertools.permutations(nodes - {src, dst}, k):
            path = [src, *mids, dst]
            width = float("inf")
            ok = True
            for a, b in zip(path[:-1], path[1:]):
                w = graph.get((a, b), 0.0)
                if w <= 0 or w != w:
                    ok = False
                    break
                width = min(width, w)
            if ok and width > best_width:
                best, best_width = path, width
    return best, best_width


@given(
    st.dictionaries(
        st.tuples(
            st.sampled_from(["A", "B", "C", "D", "E"]),
            st.sampled_from(["A", "B", "C", "D", "E"]),
        ).filter(lambda p: p[0] != p[1]),
        st.floats(min_value=0.1, max_value=100.0),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=120, deadline=None)
def test_property_widest_matches_brute_force_width(graph):
    """Dijkstra-widest finds a path of maximal width (brute-force check).

    Note: unrestricted hops — the greedy settle is exact without a hop
    limit, which is how the selector calls it for ≤ 6 regions.
    """
    expected_path, expected_width = brute_force_widest(graph, "A", "B", 5)
    got = widest_path(graph, "A", "B", max_hops=None)
    if expected_path is None:
        assert got is None
    else:
        assert got is not None
        assert path_bottleneck(graph, got) == pytest.approx(expected_width)


# ----------------------------------------------------------------------
# PathAllocation / TransferSchema
# ----------------------------------------------------------------------
def test_allocation_vm_accounting():
    direct = PathAllocation(["A", "B"], instances=3, base_throughput=5.0)
    assert direct.vm_cost_per_instance() == 1
    assert direct.vms_used() == 3
    relay = PathAllocation(["A", "C", "B"], instances=2, base_throughput=4.0)
    assert relay.vm_cost_per_instance() == 2
    assert relay.vms_used() == 4


def test_allocation_throughput_diminishing():
    alloc = PathAllocation(["A", "B"], instances=4, base_throughput=10.0)
    assert alloc.estimated_throughput(gain=0.5) == pytest.approx(25.0)


def test_schema_aggregates():
    schema = TransferSchema(
        [
            PathAllocation(["A", "B"], 2, 5.0),
            PathAllocation(["A", "C", "B"], 1, 8.0),
        ]
    )
    assert schema.vms_used() == 4
    assert schema.estimated_throughput(0.5) == pytest.approx(5 * 1.5 + 8)
    assert "A->B×2" in schema.describe()


# ----------------------------------------------------------------------
# MultiPathSelector
# ----------------------------------------------------------------------
def test_selector_single_node_budget_gives_one_direct_instance():
    sel = MultiPathSelector(gain=0.5)
    schema = sel.select(SIMPLE, "A", "B", node_budget=1)
    assert len(schema.allocations) == 1
    # Widest path is the relay (cost 2 > budget) — still granted, as a
    # transfer must happen.
    assert schema.allocations[0].instances == 1


def test_selector_grows_widest_then_opens_next():
    sel = MultiPathSelector(gain=0.5)
    schema = sel.select(SIMPLE, "A", "B", node_budget=12)
    paths = [tuple(a.path) for a in schema.allocations]
    assert ("A", "C", "B") in paths  # widest first
    assert len(paths) >= 2  # opened an alternative
    assert schema.vms_used() <= 12 + 2  # within budget (+1 final growth)


def test_selector_uses_multiple_paths_at_scale():
    sel = MultiPathSelector(gain=0.3)  # strong diminishing returns
    schema = sel.select(SIMPLE, "A", "B", node_budget=20)
    assert len(schema.allocations) >= 2
    assert schema.estimated_throughput(0.3) > 8.0  # beats single path width


def test_selector_unmonitored_falls_back_to_direct():
    sel = MultiPathSelector(gain=0.5)
    schema = sel.select({}, "A", "B", node_budget=5)
    assert schema.allocations[0].path == ["A", "B"]


def test_selector_validation():
    with pytest.raises(ValueError):
        MultiPathSelector(gain=0.0)
    with pytest.raises(ValueError):
        MultiPathSelector(gain=0.5).select(SIMPLE, "A", "B", node_budget=0)


@given(
    st.dictionaries(
        st.tuples(
            st.sampled_from(["A", "B", "C", "D"]),
            st.sampled_from(["A", "B", "C", "D"]),
        ).filter(lambda p: p[0] != p[1]),
        st.floats(min_value=0.5, max_value=50.0),
        min_size=1,
        max_size=12,
    ),
    st.integers(min_value=1, max_value=30),
    st.floats(min_value=0.1, max_value=0.9),
)
@settings(max_examples=100, deadline=None)
def test_property_selector_budget_and_structure(graph, budget, gain):
    """Selector always returns ≥1 allocation; instance counts positive;
    total VM usage stays within budget + one growth step."""
    sel = MultiPathSelector(gain=gain)
    schema = sel.select(graph, "A", "B", node_budget=budget)
    assert len(schema.allocations) >= 1
    assert all(a.instances >= 1 for a in schema.allocations)
    worst_step = max(a.vm_cost_per_instance() for a in schema.allocations)
    assert schema.vms_used() <= budget + worst_step
    # No duplicate paths in one schema.
    paths = [tuple(a.path) for a in schema.allocations]
    assert len(set(paths)) == len(paths)
