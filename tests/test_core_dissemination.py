"""Tests for multicast dissemination planning and execution."""

import pytest

from repro.core.dissemination import (
    Disseminator,
    TreeEdge,
    plan_dissemination,
)
from repro.simulation.units import MB
from repro.workloads.synthetic import fresh_engine


GRAPH = {
    ("A", "B"): 10.0,
    ("A", "C"): 2.0,
    ("B", "C"): 9.0,
    ("B", "D"): 8.0,
    ("C", "D"): 1.0,
}


def test_plan_uses_widest_attachment():
    plan = plan_dissemination(GRAPH, "A", ["B", "C", "D"])
    assert TreeEdge("A", "B", 10.0) in plan.edges
    # C is better served from B (9.0) than from A (2.0).
    assert TreeEdge("B", "C", 9.0) in plan.edges
    assert TreeEdge("B", "D", 8.0) in plan.edges
    assert plan.depth() == 2


def test_plan_unmonitored_destination_falls_back_to_source():
    plan = plan_dissemination({("A", "B"): 5.0}, "A", ["B", "Z"])
    blind = [e for e in plan.edges if e.dst == "Z"]
    assert blind == [TreeEdge("A", "Z", 0.0)]


def test_plan_validation():
    with pytest.raises(ValueError, match="own destination"):
        plan_dissemination(GRAPH, "A", ["A", "B"])
    with pytest.raises(ValueError, match="duplicate"):
        plan_dissemination(GRAPH, "A", ["B", "B"])


def test_plan_children_and_describe():
    plan = plan_dissemination(GRAPH, "A", ["B", "C"])
    assert [e.dst for e in plan.children("A")] == ["B"]
    assert "A->B" in plan.describe()


@pytest.fixture
def engine():
    return fresh_engine(
        seed=95,
        spec={"NEU": 4, "WEU": 3, "EUS": 3, "NUS": 4, "SUS": 3, "WUS": 3},
        learning_phase=240.0,
        variability_sigma=0.0,
        glitches=False,
    )


def test_disseminator_reaches_every_destination(engine):
    diss = Disseminator(engine, n_nodes_per_edge=2)
    destinations = ["WEU", "EUS", "NUS", "SUS", "WUS"]
    plan = diss.plan("NEU", destinations)
    report = diss.run(100 * MB, plan)
    assert set(report.completion_times) == set(destinations)
    assert report.makespan > 0
    assert all(report.arrival(d) > 0 for d in destinations)


def test_store_and_forward_orders_tree_levels(engine):
    """Without pipelining, a site finishes strictly before its children."""
    diss = Disseminator(engine, n_nodes_per_edge=2, pipeline_threshold=1.0)
    destinations = ["WEU", "EUS", "NUS", "SUS", "WUS"]
    plan = diss.plan("NEU", destinations)
    report = diss.run(100 * MB, plan)
    for edge in plan.edges:
        if edge.src != "NEU":
            assert report.arrival(edge.src) < report.arrival(edge.dst)


def _constrained_engine():
    # A small source site: its three NICs are the scarce resource, which
    # is exactly when forwarding through served sites pays off.
    return fresh_engine(
        seed=95,
        spec={"NEU": 3, "WEU": 3, "EUS": 3, "NUS": 3, "SUS": 3, "WUS": 3},
        learning_phase=240.0,
        variability_sigma=0.0,
        glitches=False,
    )


def test_tree_beats_unicast_star_when_source_bound():
    destinations = ["WEU", "EUS", "NUS", "SUS", "WUS"]
    e_star = _constrained_engine()
    star = Disseminator(e_star, n_nodes_per_edge=3).run(
        500 * MB, Disseminator(e_star, 3).unicast_plan("NEU", destinations)
    )
    e_tree = _constrained_engine()
    diss = Disseminator(e_tree, n_nodes_per_edge=3)
    tree = diss.run(500 * MB, diss.plan("NEU", destinations))
    assert tree.makespan < star.makespan


def test_disseminator_validation(engine):
    diss = Disseminator(engine)
    with pytest.raises(ValueError):
        Disseminator(engine, n_nodes_per_edge=0)
    plan = diss.plan("NEU", ["NUS"])
    with pytest.raises(ValueError):
        diss.run(0.0, plan)
