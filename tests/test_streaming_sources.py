"""Tests for stream sources."""

import numpy as np
import pytest

from repro.simulation.engine import Simulator
from repro.streaming.sources import (
    MmppSource,
    PoissonSource,
    SensorGridSource,
    TraceSource,
)


def collect(source, duration, seed=0):
    sim = Simulator(seed=seed)
    out = []
    source.attach(sim, "NEU", out.extend)
    source.start()
    sim.run_until(duration)
    source.stop()
    return sim, out


def test_poisson_rate_and_ordering():
    src = PoissonSource("p", rate=100.0, keys=["a", "b"])
    sim, records = collect(src, 100.0)
    assert len(records) == pytest.approx(10_000, rel=0.1)
    assert {r.key for r in records} == {"a", "b"}
    assert all(r.origin == "NEU" for r in records)
    # Event times lie within the elapsed window.
    assert all(0 <= r.event_time <= 100.0 for r in records)


def test_poisson_reproducible():
    a = collect(PoissonSource("p", rate=50.0), 20.0, seed=3)[1]
    b = collect(PoissonSource("p", rate=50.0), 20.0, seed=3)[1]
    assert [r.event_time for r in a] == [r.event_time for r in b]


def test_poisson_validation():
    with pytest.raises(ValueError):
        PoissonSource("p", rate=0.0)


def test_source_lifecycle_errors():
    src = PoissonSource("p", rate=1.0)
    with pytest.raises(RuntimeError, match="attached"):
        src.start()
    sim = Simulator()
    src.attach(sim, "NEU", lambda rs: None)
    src.start()
    with pytest.raises(RuntimeError, match="already started"):
        src.start()


def test_mmpp_burstiness():
    src = MmppSource(
        "m", base_rate=50.0, burst_rate=2000.0, mean_quiet=30.0, mean_burst=10.0
    )
    sim, records = collect(src, 600.0, seed=5)
    # Count per-second arrivals; bursts should produce heavy upper tail.
    counts = np.bincount(
        [int(r.event_time) for r in records], minlength=600
    )
    # Burst seconds run far above the long-run mean rate.
    assert counts.max() > 4 * max(counts.mean(), 1.0)
    mean_rate = len(records) / 600.0
    assert 50.0 < mean_rate < 2000.0


def test_mmpp_validation():
    with pytest.raises(ValueError):
        MmppSource("m", base_rate=0.0, burst_rate=10.0)
    with pytest.raises(ValueError):
        MmppSource("m", base_rate=1.0, burst_rate=10.0, mean_quiet=0.0)


def test_sensor_grid_rate_and_keys():
    src = SensorGridSource("g", n_sensors=100, report_interval=10.0)
    sim, records = collect(src, 200.0, seed=1)
    # ~100 sensors / 10 s → 10 records/s → ~2000 records.
    assert len(records) == pytest.approx(2000, rel=0.15)
    keys = {r.key for r in records}
    assert len(keys) == 100
    assert src.mean_rate == pytest.approx(10.0)


def test_sensor_values_drift_slowly():
    src = SensorGridSource("g", n_sensors=1, report_interval=1.0,
                           drift_sigma=0.0, noise_sigma=0.0)
    sim, records = collect(src, 50.0, seed=2)
    values = [r.value for r in records]
    assert np.std(values) < 0.01  # no drift, no noise → constant


def test_sensor_validation():
    with pytest.raises(ValueError):
        SensorGridSource("g", n_sensors=0)
    with pytest.raises(ValueError):
        SensorGridSource("g", n_sensors=1, report_interval=0.0)


def test_trace_source_replays_in_order():
    trace = [(5.0, "a", 1), (1.0, "b", 2), (12.0, "c", 3)]
    src = TraceSource("t", trace)
    sim, records = collect(src, 20.0)
    assert [r.key for r in records] == ["b", "a", "c"]
    assert src.exhausted


def test_trace_source_partial_replay():
    src = TraceSource("t", [(1.0, "a", 1), (100.0, "b", 2)])
    sim, records = collect(src, 10.0)
    assert len(records) == 1
    assert not src.exhausted


def test_trace_source_validation():
    with pytest.raises(ValueError):
        TraceSource("t", [])
