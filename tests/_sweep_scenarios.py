"""Tiny importable scenarios for the sweep-runner tests.

These live in their own module (not a test file) because spawn-based
pool workers resolve dotted scenario references by import — the module
must exist identically in a fresh interpreter.
"""

from __future__ import annotations

import random


def tiny(config: dict, seed: int) -> dict:
    """A cheap deterministic 'experiment': seeded draws over the config."""
    rng = random.Random(seed)
    n = int(config.get("n", 4))
    return {
        "scenario": "tiny",
        "seed": seed,
        "config": dict(sorted(config.items())),
        "draws": [rng.randint(0, 10**9) for _ in range(n)],
        "mean": sum(rng.random() for _ in range(16)) / 16.0,
    }


def flaky(config: dict, seed: int) -> dict:
    """Fails deterministically when told to — exercises failure paths."""
    if config.get("explode"):
        raise RuntimeError("scripted shard failure")
    return tiny(config, seed)


def seed_probe(config: dict, seed: int) -> dict:
    """Returns only the seed it was handed — pins derivation plumbing."""
    return {"seed": seed}
