"""End-to-end backpressure, shedding, and shipping flow control."""

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.core.engine import SageEngine
from repro.flow.breaker import CLOSED, OPEN, CircuitBreaker
from repro.flow.policy import FlowConfig
from repro.obs import Observer
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.events import Batch, Record
from repro.streaming.operators import builtin_aggregate
from repro.streaming.runtime import GeoStreamRuntime
from repro.streaming.shipping import ReliableShipping, SageShipping
from repro.streaming.sources import BurstSource, PoissonSource
from repro.streaming.windows import TumblingWindows


def make_engine(seed=23, observer=None):
    env = CloudEnvironment(seed=seed, variability_sigma=0.0, glitches=False)
    engine = SageEngine(
        env, deployment_spec={"NEU": 2, "NUS": 2}, observer=observer
    )
    engine.start(learning_phase=60.0)
    return engine


def make_job(source, flow=None, **kwargs):
    kwargs.setdefault("watermark_lag", 5.0)
    kwargs.setdefault("finalize_grace", 15.0)
    return StreamJob(
        name="bp",
        sites=[SiteSpec("NEU", [source])],
        aggregation_region="NUS",
        windows=TumblingWindows(10.0),
        aggregate=builtin_aggregate("count"),
        flow=flow,
        **kwargs,
    )


def drain(engine, runtime):
    """Quiet the sources, let backlogs clear, stop, and let grace pass."""
    for site in runtime.sites.values():
        site.stop_sources()
    engine.run_until(engine.sim.now + runtime.job.watermark_lag + 15.0)
    runtime.stop()
    engine.run_until(engine.sim.now + runtime.job.finalize_grace + 30.0)


def total_lost(runtime):
    return runtime.records_ingested() - runtime.records_in_results()


def accounted_loss(runtime):
    return (
        runtime.records_shed()
        + sum(s.aggregator.late_dropped for s in runtime.sites.values())
        + runtime.aggregator.late_partial_records
        + sum(
            getattr(s.shipping, "records_abandoned", 0)
            for s in runtime.sites.values()
        )
    )


# ----------------------------------------------------------------------
# End-to-end overload policies
# ----------------------------------------------------------------------
def test_block_bounds_backlog_and_loses_nothing():
    engine = make_engine()
    source = BurstSource(
        "burst", base_rate=50.0, burst_rate=400.0,
        burst_start=5.0, burst_end=15.0, keys=["k1", "k2"],
    )
    flow = FlowConfig(policy="block", max_backlog=400)
    runtime = GeoStreamRuntime(
        engine,
        make_job(source, flow=flow),
        SageShipping.factory(n_nodes=2),
        per_vm_records_per_s=75.0,  # capacity 150/s vs a 400/s burst
    )
    runtime.start()
    engine.run_until(engine.sim.now + 60.0)
    drain(engine, runtime)

    site = runtime.sites["NEU"]
    assert site.max_backlog <= flow.max_backlog  # the hard bound held
    assert source.max_deferred > 0  # overload became source deferral...
    assert source.pending_count == 0  # ...and fully drained afterwards
    assert site.records_shed == 0
    assert total_lost(runtime) == 0  # every admitted record counted


def test_block_source_sees_partial_accepts():
    engine = make_engine()
    source = PoissonSource("p", rate=500.0, keys=["k"])
    flow = FlowConfig(policy="block", max_backlog=300)
    runtime = GeoStreamRuntime(
        engine,
        make_job(source, flow=flow),
        SageShipping.factory(n_nodes=2),
        per_vm_records_per_s=50.0,
    )
    runtime.start()
    engine.run_until(engine.sim.now + 20.0)
    site = runtime.sites["NEU"]
    # Admission is credit-gated: the buffer never exceeds the bound and
    # the source is left holding the excess.
    assert site.backlog <= flow.max_backlog
    assert source.pending_count > 0
    assert site.records_ingested < 500.0 * 20.0
    runtime.stop()


def test_shed_bounds_backlog_with_counted_loss():
    engine = make_engine()
    source = PoissonSource("p", rate=400.0, keys=["k1", "k2"])
    flow = FlowConfig(policy="shed", max_backlog=300)
    runtime = GeoStreamRuntime(
        engine,
        make_job(source, flow=flow),
        SageShipping.factory(n_nodes=2),
        per_vm_records_per_s=75.0,
    )
    runtime.start()
    engine.run_until(engine.sim.now + 45.0)
    drain(engine, runtime)

    site = runtime.sites["NEU"]
    assert site.max_backlog <= flow.max_backlog
    assert site.records_shed > 0  # sustained overload had to drop
    assert source.pending_count == 0  # shed never defers the source
    lost = total_lost(runtime)
    assert lost > 0
    assert lost == accounted_loss(runtime)  # every loss is explained


def test_degrade_bounds_memory_at_twice_and_counts_coarse_ticks():
    engine = make_engine()
    source = BurstSource(
        "burst", base_rate=50.0, burst_rate=500.0,
        burst_start=5.0, burst_end=20.0, keys=["k1", "k2"],
    )
    flow = FlowConfig(policy="degrade", max_backlog=300, degrade_factor=4)
    runtime = GeoStreamRuntime(
        engine,
        make_job(source, flow=flow),
        SageShipping.factory(n_nodes=2),
        per_vm_records_per_s=75.0,
    )
    runtime.start()
    engine.run_until(engine.sim.now + 60.0)
    drain(engine, runtime)

    site = runtime.sites["NEU"]
    assert site.max_backlog <= 2 * flow.max_backlog
    assert site.degraded_ticks > 0
    assert site.degrade_transitions >= 2  # entered and left coarse mode
    assert total_lost(runtime) == accounted_loss(runtime)


# ----------------------------------------------------------------------
# ReliableShipping flow control
# ----------------------------------------------------------------------
class ManualInner:
    """Inner backend whose deliveries complete only on request."""

    def __init__(self):
        self.shipped = []
        self.bytes_shipped = 0.0
        self.batches_shipped = 0

    def ship(self, batch, on_delivered):
        self.shipped.append((batch, on_delivered))
        self.bytes_shipped += batch.size_bytes
        self.batches_shipped += 1

    def deliver_next(self):
        batch, cb = self.shipped.pop(0)
        cb(batch)


@pytest.fixture
def engine():
    return make_engine(seed=31)


def batch(seq, origin="NEU", n_records=2):
    records = [
        Record(0.0, "k", 1.0, origin=origin, size_bytes=100.0)
        for _ in range(n_records)
    ]
    return Batch(records, origin, created_at=0.0, seq=seq)


def test_inflight_window_parks_excess(engine):
    inner = ManualInner()
    shipping = ReliableShipping(
        engine, inner, delivery_timeout=60.0, max_inflight=2
    )
    got = []
    for seq in range(4):
        shipping.ship(batch(seq), got.append)
    assert len(inner.shipped) == 2  # window full
    assert shipping.inflight == 2 and shipping.parked == 2
    assert shipping.saturated
    inner.deliver_next()
    assert len(got) == 1
    assert len(inner.shipped) == 2  # a parked batch took the freed slot
    assert shipping.parked == 1
    inner.deliver_next()
    inner.deliver_next()
    inner.deliver_next()
    assert len(got) == 4
    assert not shipping.saturated and shipping.inflight == 0


def test_max_pending_sheds_oldest_parked(engine):
    inner = ManualInner()
    shipping = ReliableShipping(
        engine, inner, delivery_timeout=60.0, max_inflight=1, max_pending=2
    )
    got = []
    for seq in range(5):
        shipping.ship(batch(seq), got.append)
    # Seq 0 in flight; 1..4 parked with a bound of 2: 1 and 2 were shed.
    assert shipping.parked == 2
    assert shipping.batches_shed == 2
    assert shipping.records_shed == 4  # two records per batch
    for _ in range(3):
        inner.deliver_next()
    assert [b.seq for b in got] == [0, 3, 4]


def test_open_breaker_parks_instead_of_queueing(engine):
    breaker = CircuitBreaker(
        engine, link=("NEU", "NUS"), failure_threshold=1, reset_timeout=5.0
    )
    inner = ManualInner()
    shipping = ReliableShipping(
        engine, inner, delivery_timeout=60.0, breaker=breaker
    )
    engine.emit_fault("link.down", "NEU->NUS")  # detector trips the breaker
    assert breaker.state == OPEN
    got = []
    shipping.ship(batch(1), got.append)
    assert inner.shipped == []  # nothing queued into the dead link
    assert shipping.parked == 1
    # After the reset timeout the scheduled probe pumps the queue.
    engine.run_until(engine.sim.now + 6.0)
    assert len(inner.shipped) == 1  # the half-open probe
    inner.deliver_next()
    assert got and breaker.state == CLOSED


def test_ship_is_idempotent_while_pending(engine):
    inner = ManualInner()
    shipping = ReliableShipping(engine, inner, delivery_timeout=60.0)
    got = []
    h1 = shipping.ship(batch(7), got.append)
    h2 = shipping.ship(batch(7), got.append)  # replay overlap
    assert len(inner.shipped) == 1  # one delivery covers both
    assert h2._delivery is h1._delivery
    inner.deliver_next()
    assert len(got) == 1
    # Once finished, a new ship for the same seq is a fresh delivery
    # (recovery replay after the original completed): dedup is the
    # receiver's job, not the transport's.
    shipping.ship(batch(7), got.append)
    assert len(inner.shipped) == 1 and shipping.acked == 1


def test_cancel_stops_retries_and_frees_the_slot(engine):
    """Satellite contract: ``cancel()`` kills the *whole* delivery — the
    pending retry timer is cancelled and the in-flight entry removed, so
    a cancelled batch can never ship again."""
    inner = ManualInner()  # never delivers: every attempt times out
    shipping = ReliableShipping(
        engine, inner, delivery_timeout=2.0, max_retries=5, backoff_base=4.0
    )
    got = []
    handle = shipping.ship(batch(3), got.append)
    engine.run_until(engine.sim.now + 3.0)  # first timeout: retry pending
    assert shipping.retries == 1
    assert len(inner.shipped) == 1
    handle.cancel()
    assert handle.cancelled
    assert shipping.cancels == 1
    assert shipping._inflight == {}  # removed from the in-flight map
    engine.run_until(engine.sim.now + 120.0)
    assert len(inner.shipped) == 1  # the retry timer never fired
    assert got == [] and shipping.abandoned == 0
    assert shipping.inflight == 0  # no slot leaked


def test_cancel_active_delivery_releases_its_credit(engine):
    inner = ManualInner()
    shipping = ReliableShipping(
        engine, inner, delivery_timeout=60.0, max_inflight=1
    )
    got = []
    h1 = shipping.ship(batch(1), got.append)
    shipping.ship(batch(2), got.append)
    assert shipping.parked == 1
    h1.cancel()
    # The freed slot immediately dispatches the parked batch.
    assert shipping.parked == 0
    assert [b.seq for b, _ in inner.shipped] == [1, 2]
    inner.deliver_next()  # batch 1's copy lands dead: delivery cancelled
    inner.deliver_next()
    assert [b.seq for b in got] == [2]


# ----------------------------------------------------------------------
# Restart semantics and observability surfacing
# ----------------------------------------------------------------------
def test_restart_resets_peak_backlog_and_resumes_sources():
    obs = Observer()
    engine = make_engine(seed=47, observer=obs)
    source = PoissonSource("p", rate=300.0, keys=["k"])
    flow = FlowConfig(policy="shed", max_backlog=200)
    runtime = GeoStreamRuntime(
        engine,
        make_job(source, flow=flow),
        SageShipping.factory(n_nodes=2),
        per_vm_records_per_s=50.0,
    )
    runtime.start()
    engine.run_until(engine.sim.now + 20.0)
    site = runtime.sites["NEU"]
    peak_before = site.max_backlog
    assert peak_before > 0
    # The peak is surfaced through repro.obs while the site runs.
    gauge = obs.gauge("stream_backlog_peak", site="NEU")
    assert gauge.value == peak_before

    site.stop()
    assert not source.running
    site.restart()
    # The high-water mark restarts from the *current* depth, and the
    # exported gauge follows, so post-restart monitoring is not stuck
    # on the pre-crash peak.
    assert site.max_backlog == site.backlog < peak_before
    assert gauge.value == site.max_backlog
    assert source.running  # stopped sources were resumed
    site.restart()  # idempotent on a live site
    site.stop()


def test_streaming_report_shows_flow_state():
    from repro.analysis.introspection import streaming_report

    engine = make_engine(seed=53)
    source = PoissonSource("p", rate=300.0, keys=["k"])
    flow = FlowConfig(policy="shed", max_backlog=200)
    runtime = GeoStreamRuntime(
        engine,
        make_job(source, flow=flow),
        SageShipping.factory(n_nodes=2),
        per_vm_records_per_s=50.0,
    )
    runtime.enable_checkpointing(interval=5.0)
    runtime.start()
    engine.run_until(engine.sim.now + 20.0)
    runtime.stop()
    report = streaming_report(runtime)
    assert "policy=shed" in report and "bound=200" in report
    assert "NEU" in report
    site = runtime.sites["NEU"]
    assert str(site.max_backlog) in report
    assert "checkpoints:" in report


# ----------------------------------------------------------------------
# Crash/restart exactly-once
# ----------------------------------------------------------------------
def test_aggregator_crash_restart_is_exactly_once():
    engine = make_engine(seed=61)
    source = PoissonSource("p", rate=40.0, keys=["k1", "k2"])
    runtime = GeoStreamRuntime(
        engine, make_job(source), SageShipping.factory(n_nodes=2)
    )
    runtime.enable_checkpointing(interval=5.0)
    runtime.start()
    engine.run_until(engine.sim.now + 30.0)
    runtime.crash_aggregator()
    assert not runtime.aggregator_up
    engine.run_until(engine.sim.now + 10.0)
    dropped = runtime.batches_dropped_while_down
    retained = sum(s.retained_batches for s in runtime.sites.values())
    assert retained > 0  # the replay set survived the crash
    runtime.restart_aggregator()
    assert runtime.aggregator_up
    engine.run_until(engine.sim.now + 30.0)
    drain(engine, runtime)

    assert runtime.aggregator_crashes == 1
    assert dropped > 0  # deliveries landed on the dead process...
    assert total_lost(runtime) == 0  # ...and replay recovered them all
    results = runtime.results
    # Exactly once: no (window, key) emitted twice across the crash.
    assert len({(r.window, r.key) for r in results}) == len(results)


def test_crash_without_restart_keeps_committed_results():
    engine = make_engine(seed=67)
    source = PoissonSource("p", rate=40.0, keys=["k"])
    runtime = GeoStreamRuntime(
        engine, make_job(source), SageShipping.factory(n_nodes=2)
    )
    runtime.enable_checkpointing(interval=5.0)
    runtime.start()
    engine.run_until(engine.sim.now + 40.0)
    committed = len(runtime.aggregator.results)
    assert committed > 0  # checkpoints have been committing results
    runtime.crash_aggregator()
    runtime.crash_aggregator()  # idempotent
    assert runtime.aggregator_crashes == 1
    # Committed results already left through the transactional sink.
    assert len(runtime.results) >= committed
    runtime.stop()
