"""Tests for transfer sessions and the transfer service."""

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.monitor.agent import MonitoringAgent
from repro.simulation.units import GB, MB
from repro.transfer.plan import RouteAssignment, TransferPlan
from repro.transfer.service import TransferService
from repro.transfer.session import CHUNK_METADATA_BYTES, TransferSession


@pytest.fixture
def env():
    return CloudEnvironment(seed=31, variability_sigma=0.0, glitches=False)


def setup_vms(env):
    src = env.provision("NEU", "Small", 3)
    dst = env.provision("NUS", "Small", 3)
    return src, dst


def run_session(env, service, plan, size, **kwargs):
    done = []
    session = service.execute(
        plan, size, on_complete=lambda s: done.append(env.now), **kwargs
    )
    env.sim.run_until(env.now + 100_000)
    assert done, "session did not complete"
    return session, done[0]


def test_direct_session_completes_and_charges(env):
    src, dst = setup_vms(env)
    service = TransferService(env)
    plan = TransferPlan.direct(src[0], dst[0], streams=4)
    before = env.meter.snapshot()
    session, t = run_session(env, service, plan, 100 * MB)
    assert session.done
    assert session.elapsed > 0
    spent = env.meter.snapshot() - before
    assert spent.egress_bytes == pytest.approx(session.bytes_on_wire, rel=1e-6)
    assert spent.egress_usd > 0


def test_multi_route_session_splits_by_weight(env):
    src, dst = setup_vms(env)
    service = TransferService(env)
    plan = TransferPlan(
        [
            RouteAssignment([src[0], dst[0]], weight=1.0, streams=4),
            RouteAssignment([src[1], dst[1]], weight=3.0, streams=4),
        ]
    )
    session, _ = run_session(env, service, plan, 100 * MB)
    f1, f2 = session.flows
    assert f2.size == pytest.approx(3 * f1.size, rel=0.01)


def test_session_ack_overhead_adds_final_rtt(env):
    src, dst = setup_vms(env)
    service = TransferService(env, ack_overhead=True)
    plan = TransferPlan.direct(src[0], dst[0], streams=4)
    session, t_end = run_session(env, service, plan, 10 * MB)
    flow_done = session.flows[0].completed_at
    rtt = env.topology.rtt("NEU", "NUS")
    assert session.completed_at == pytest.approx(flow_done + rtt, abs=1e-6)


def test_session_metadata_overhead_on_wire(env):
    src, dst = setup_vms(env)
    service = TransferService(env, chunk_size=1 * MB)
    plan = TransferPlan.direct(src[0], dst[0], streams=4)
    session, _ = run_session(env, service, plan, 10 * MB)
    assert session.bytes_on_wire == pytest.approx(
        10 * MB + 10 * CHUNK_METADATA_BYTES
    )
    assert session.chunks_total == 10
    assert session.acks_received == 10


def test_session_progress_view(env):
    src, dst = setup_vms(env)
    service = TransferService(env)
    plan = TransferPlan.direct(src[0], dst[0], streams=4)
    session = service.execute(plan, 1 * GB)
    env.sim.run_until(10.0)
    assert 0 < session.transferred < session.bytes_on_wire
    assert session.current_throughput() > 0
    assert 0 < session.eta() < float("inf")
    desc, transferred, rate = session.route_progress()[0]
    assert desc == "NEU->NUS"
    assert transferred > 0


def test_session_cancel_charges_partial_egress(env):
    src, dst = setup_vms(env)
    service = TransferService(env)
    plan = TransferPlan.direct(src[0], dst[0], streams=4)
    session = service.execute(plan, 1 * GB)
    env.sim.run_until(20.0)
    before = env.meter.snapshot()
    moved = session.flows[0].transferred
    undelivered = session.cancel()
    assert undelivered == pytest.approx(session.bytes_on_wire - moved, rel=0.01)
    spent = env.meter.snapshot() - before
    assert spent.egress_bytes == pytest.approx(moved, rel=0.01)
    env.sim.run_until(1000.0)
    assert not session.done  # cancelled sessions never complete


def test_relay_route_double_egress(env):
    src, dst = setup_vms(env)
    relay = env.provision("EUS", "Small")[0]
    service = TransferService(env)
    plan = TransferPlan(
        [RouteAssignment([src[0], relay, dst[0]], streams=4)]
    )
    before = env.meter.snapshot()
    session, _ = run_session(env, service, plan, 50 * MB)
    spent = env.meter.snapshot() - before
    assert spent.egress_bytes == pytest.approx(2 * session.bytes_on_wire, rel=1e-6)


def test_service_feeds_monitor(env):
    src, dst = setup_vms(env)
    monitor = MonitoringAgent(env.network, env.deployment)
    monitor.watch_link("NEU", "NUS")
    service = TransferService(env, monitor=monitor)
    plan = TransferPlan.direct(src[0], dst[0], streams=4)
    run_session(env, service, plan, 100 * MB)
    est = monitor.link_map.estimate("NEU", "NUS")
    assert est.known  # achieved throughput was ingested for free


def test_service_session_listings(env):
    src, dst = setup_vms(env)
    service = TransferService(env)
    plan = TransferPlan.direct(src[0], dst[0], streams=4)
    s = service.execute(plan, 10 * MB)
    assert service.active_sessions() == [s]
    env.sim.run_until(10_000)
    assert service.completed_sessions() == [s]
    assert service.active_sessions() == []


def test_session_validates_size(env):
    src, dst = setup_vms(env)
    plan = TransferPlan.direct(src[0], dst[0])
    with pytest.raises(ValueError):
        TransferSession(env.network, plan, 0.0, chunk_size=MB)
