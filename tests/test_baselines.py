"""Tests for the baseline transfer strategies."""

import pytest

from repro.baselines import (
    BlobRelay,
    DynamicShortestPath,
    EndPoint2EndPoint,
    GridFtpLike,
    StaticParallel,
    StaticShortestPath,
)
from repro.cloud.deployment import CloudEnvironment
from repro.core.engine import SageEngine
from repro.core.strategy import SageStrategy
from repro.simulation.units import GB, MB


def make_engine(seed=19, stable=True):
    env = CloudEnvironment(
        seed=seed,
        variability_sigma=0.0 if stable else 0.25,
        glitches=not stable,
    )
    engine = SageEngine(
        env, deployment_spec={"NEU": 6, "WEU": 4, "EUS": 4, "NUS": 6}
    )
    engine.start(learning_phase=180.0)
    return engine


SIZE = 256 * MB


def test_endpoint2endpoint_single_flow():
    engine = make_engine()
    r = EndPoint2EndPoint(streams=1).run(engine, "NEU", "NUS", SIZE)
    expected = SIZE / (engine.env.network.tcp_window / engine.env.topology.rtt("NEU", "NUS"))
    assert r.seconds == pytest.approx(expected, rel=0.05)
    assert r.egress_usd > 0


def test_static_parallel_faster_than_direct():
    e1 = make_engine(seed=4)
    direct = EndPoint2EndPoint(streams=4).run(e1, "NEU", "NUS", SIZE)
    e2 = make_engine(seed=4)
    par = StaticParallel(n_nodes=5, streams=4).run(e2, "NEU", "NUS", SIZE)
    assert par.seconds < direct.seconds


def test_static_parallel_suffers_from_degraded_node():
    engine = make_engine(seed=6)
    strat = StaticParallel(n_nodes=4, streams=4)
    plan = strat.build_plan(engine, "NEU", "NUS")
    # Degrade one of its fixed senders before launch.
    victim = plan.routes[2].path[0]
    victim.degrade(0.15)
    healthy_engine = make_engine(seed=6)
    healthy = StaticParallel(n_nodes=4, streams=4).run(
        healthy_engine, "NEU", "NUS", SIZE
    )
    hurt = strat.run(engine, "NEU", "NUS", SIZE)
    assert hurt.seconds > healthy.seconds * 1.3  # straggler dominates


def test_gridftp_includes_submission_latency():
    e1 = make_engine(seed=9)
    fast = GridFtpLike(submission_latency=0.0).run(e1, "NEU", "NUS", SIZE)
    e2 = make_engine(seed=9)
    slow = GridFtpLike(submission_latency=30.0).run(e2, "NEU", "NUS", SIZE)
    assert slow.seconds == pytest.approx(fast.seconds + 30.0, rel=0.1)


def test_blob_relay_two_passes_slower_than_direct_parallel():
    e1 = make_engine(seed=12)
    blob = BlobRelay().run(e1, "NEU", "NUS", SIZE)
    e2 = make_engine(seed=12)
    grid = GridFtpLike().run(e2, "NEU", "NUS", SIZE)
    assert blob.seconds > grid.seconds
    assert blob.extra_usd > 0  # storage charges


def test_shortest_path_strategies_run():
    e1 = make_engine(seed=15)
    static = StaticShortestPath(n_nodes=8).run(e1, "NEU", "NUS", SIZE)
    e2 = make_engine(seed=15)
    dynamic = DynamicShortestPath(n_nodes=8).run(e2, "NEU", "NUS", SIZE)
    assert static.seconds > 0 and dynamic.seconds > 0
    # Stable cloud: static and dynamic agree (no drift to chase).
    assert dynamic.seconds == pytest.approx(static.seconds, rel=0.25)


def test_sage_strategy_beats_naive_on_unstable_cloud():
    e1 = make_engine(seed=33, stable=False)
    naive = StaticParallel(n_nodes=8, streams=4).run(e1, "NEU", "NUS", 2 * GB)
    e2 = make_engine(seed=33, stable=False)
    sage = SageStrategy(n_nodes=8).run(e2, "NEU", "NUS", 2 * GB)
    assert sage.seconds < naive.seconds * 1.1  # at worst comparable


def test_validation():
    with pytest.raises(ValueError):
        StaticParallel(n_nodes=0)
    with pytest.raises(ValueError):
        GridFtpLike(streams=0)
    with pytest.raises(ValueError):
        GridFtpLike(submission_latency=-1.0)
    with pytest.raises(ValueError):
        BlobRelay(object_size=0.0)
    with pytest.raises(ValueError):
        BlobRelay(parallel_objects=0)
