"""Tests for heartbeat failure detection and detector-driven recovery."""

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.core.engine import SageEngine
from repro.monitor.agent import MonitorConfig
from repro.monitor.failure import FailureDetectorConfig
from repro.simulation.units import GB


def make_engine(seed=501, spec=None):
    env = CloudEnvironment(seed=seed, variability_sigma=0.0, glitches=False)
    engine = SageEngine(env, deployment_spec=spec or {"NEU": 4, "NUS": 4})
    engine.start(learning_phase=60.0)
    return engine


def test_config_validation():
    with pytest.raises(ValueError, match="heartbeat_interval"):
        FailureDetectorConfig(heartbeat_interval=0.0)
    with pytest.raises(ValueError, match="timeout"):
        FailureDetectorConfig(heartbeat_interval=10.0, timeout=5.0)
    cfg = FailureDetectorConfig(heartbeat_interval=5.0, timeout=15.0)
    assert cfg.detection_bound == 20.0


def test_detector_can_be_disabled():
    env = CloudEnvironment(seed=1, variability_sigma=0.0, glitches=False)
    engine = SageEngine(
        env,
        deployment_spec={"NEU": 2, "NUS": 2},
        monitor_config=MonitorConfig(failure_detection=False),
    )
    assert engine.detector is None
    engine.start(learning_phase=10.0)  # still boots fine without one


def test_crash_detected_within_bound():
    engine = make_engine()
    detector = engine.detector
    assert detector is not None
    vm = engine.deployment.vms("NEU")[0]
    vm.fail()
    engine.run_until(engine.sim.now + detector.detection_latency_bound() + 1.0)
    assert detector.is_suspected(vm.vm_id)
    assert detector.suspicions == 1
    assert len(detector.detection_latencies) == 1
    # Satellite contract: observed latency never exceeds the analytic bound.
    assert detector.detection_latencies[0] <= detector.detection_latency_bound()


def test_restored_vm_rejoins_healthy_pool():
    engine = make_engine(seed=502)
    detector = engine.detector
    vm = engine.deployment.vms("NEU")[0]
    vm.fail()
    engine.run_until(engine.sim.now + 30.0)
    assert detector.is_suspected(vm.vm_id)
    # Suspected VMs are excluded from fresh plans.
    plan = engine.decisions.build_plan("NEU", "NUS", 3)
    used = {v.vm_id for route in plan.routes for v in route.path}
    assert vm.vm_id not in used
    vm.restore()
    engine.run_until(
        engine.sim.now + 2 * detector.config.heartbeat_interval + 1.0
    )
    assert not detector.is_suspected(vm.vm_id)
    assert detector.healthy(vm)
    assert detector.recoveries == 1
    # Back in the healthy pool: a plan spanning the whole region uses it.
    plan = engine.decisions.build_plan("NEU", "NUS", 4)
    used = {v.vm_id for route in plan.routes for v in route.path}
    assert vm.vm_id in used


def test_suspicion_replans_inflight_transfer_around_crash():
    engine = make_engine(seed=503)
    mt = engine.decisions.transfer("NEU", "NUS", 2 * GB, n_nodes=3)
    engine.run_until(engine.sim.now + 10.0)
    on_plan = {
        v.vm_id
        for route in mt.current_session.plan.routes
        for v in route.path
    }
    victim = next(
        vm for vm in engine.deployment.vms("NEU") if vm.vm_id in on_plan
    )
    victim.fail()
    engine.run_until(
        engine.sim.now + engine.detector.detection_latency_bound() + 5.0
    )
    assert mt.replans >= 1
    current = {
        v.vm_id
        for route in mt.current_session.plan.routes
        for v in route.path
    }
    assert victim.vm_id not in current  # rerouted around the corpse
    victim.restore()
    while not mt.done:
        engine.run_until(engine.sim.now + 10.0)
    assert mt.done
    assert mt.bytes_confirmed >= 2 * GB * 0.999


def test_crash_emits_fault_events_on_engine_bus():
    engine = make_engine(seed=504)
    seen = []
    engine.on_fault(lambda kind, target: seen.append((kind, target)))
    vm = engine.deployment.vms("NEU")[0]
    vm.fail()
    engine.run_until(engine.sim.now + engine.detector.detection_latency_bound() + 1.0)
    assert ("vm.suspected", vm.vm_id) in seen
    vm.restore()
    engine.run_until(engine.sim.now + 15.0)
    assert ("vm.recovered", vm.vm_id) in seen
