"""Tests for the UDP shipping extension."""

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.cloud.network import Flow
from repro.core.engine import SageEngine
from repro.simulation.units import KB, MB
from repro.streaming import (
    GeoStreamRuntime,
    PoissonSource,
    SiteSpec,
    StreamJob,
    TumblingWindows,
    UdpShipping,
    builtin_aggregate,
)
from repro.streaming.events import Batch, Record
from repro.streaming.shipping import DirectShipping


def make_engine(seed=501, **env_kwargs):
    env = CloudEnvironment(seed=seed, **env_kwargs)
    engine = SageEngine(env, deployment_spec={"NEU": 3, "NUS": 3})
    engine.start(learning_phase=120.0)
    return engine


def batch(size=256 * KB, now=0.0):
    return Batch([Record(now, "k", 1.0, "NEU", size_bytes=size)], "NEU", now)


def ship_and_wait(engine, backend, b, timeout=300.0):
    done = []
    backend.ship(b, lambda bb: done.append(engine.sim.now))
    deadline = engine.sim.now + timeout
    while not done and engine.sim.now < deadline:
        engine.run_until(min(engine.sim.now + 2, deadline))
    return done[0] if done else None


def test_udp_flow_has_no_window_cap():
    env = CloudEnvironment(seed=1, variability_sigma=0.0, glitches=False)
    a = env.provision("NEU", "Small")[0]
    b = env.provision("NUS", "Small")[0]
    tcp = Flow([a, b], 1 * MB, streams=1, transport="tcp")
    udp = Flow([a, b], 1 * MB, streams=1, transport="udp")
    # UDP ignores the window/RTT ceiling; the NIC binds instead.
    assert env.network.flow_cap(udp) > 3 * env.network.flow_cap(tcp)
    assert env.network.flow_cap(udp) == pytest.approx(
        a.size.nic_bytes_per_s, rel=0.01
    )


def test_udp_transport_validated():
    env = CloudEnvironment(seed=1, variability_sigma=0.0, glitches=False)
    a, b = env.provision("NEU", "Small", 2)
    with pytest.raises(ValueError, match="transport"):
        Flow([a, b], 1.0, transport="quic")


def test_udp_faster_than_tcp_direct_on_long_rtt():
    e1 = make_engine(seed=502, variability_sigma=0.0, glitches=False)
    src, dst = e1.deployment.vms("NEU")[0], e1.deployment.vms("NUS")[0]
    t0 = e1.sim.now
    tcp_t = ship_and_wait(e1, DirectShipping(e1, src, dst, streams=1), batch()) - t0
    e2 = make_engine(seed=502, variability_sigma=0.0, glitches=False)
    src2, dst2 = e2.deployment.vms("NEU")[0], e2.deployment.vms("NUS")[0]
    t1 = e2.sim.now
    udp_t = ship_and_wait(
        e2, UdpShipping(e2, src2, dst2, base_loss=0.0, weather_loss=0.0), batch()
    ) - t1
    assert udp_t < tcp_t / 2  # no window cap, no ack round-trip


def test_udp_loses_batches_at_configured_rate():
    engine = make_engine(seed=503, variability_sigma=0.0, glitches=False)
    src, dst = engine.deployment.vms("NEU")[0], engine.deployment.vms("NUS")[0]
    backend = UdpShipping(engine, src, dst, base_loss=0.3, weather_loss=0.0)
    delivered = []
    for _ in range(150):
        backend.ship(batch(size=16 * KB, now=engine.sim.now), delivered.append)
        engine.run_until(engine.sim.now + 2.0)
    engine.run_until(engine.sim.now + 30.0)
    assert backend.batches_lost > 0
    assert backend.loss_rate == pytest.approx(0.3, abs=0.12)
    assert len(delivered) == backend.batches_shipped - backend.batches_lost


def test_udp_loss_grows_with_bad_weather():
    engine = make_engine(seed=504, variability_sigma=0.0, glitches=False)
    src, dst = engine.deployment.vms("NEU")[0], engine.deployment.vms("NUS")[0]
    backend = UdpShipping(engine, src, dst, base_loss=0.01, weather_loss=0.4)
    fair = backend._loss_probability()
    link = engine.env.topology.link("NEU", "NUS")

    class _BadWeather:
        def factor(self, t):
            return 0.3

    link.process = _BadWeather()
    storm = backend._loss_probability()
    assert storm > fair + 0.2


def test_udp_streaming_end_to_end_tolerates_loss():
    engine = make_engine(seed=505)
    job = StreamJob(
        name="udp",
        sites=[SiteSpec("NEU", [PoissonSource("s", rate=300.0, keys=["k"])])],
        aggregation_region="NUS",
        windows=TumblingWindows(10.0),
        aggregate=builtin_aggregate("count"),
    )
    runtime = GeoStreamRuntime(
        engine, job, UdpShipping.factory(base_loss=0.1)
    )
    runtime.run_for(120.0)
    counted = sum(r.value for r in runtime.results)
    ingested = runtime.records_ingested()
    backend = runtime.sites["NEU"].shipping
    assert backend.batches_lost >= 0
    # Results exist, nothing double-counted, and the shortfall matches
    # lost batches rather than silent corruption.
    assert 0 < counted <= ingested


def test_udp_validation():
    engine = make_engine(seed=506, variability_sigma=0.0, glitches=False)
    src, dst = engine.deployment.vms("NEU")[0], engine.deployment.vms("NUS")[0]
    with pytest.raises(ValueError):
        UdpShipping(engine, src, dst, base_loss=1.0)
    with pytest.raises(ValueError):
        UdpShipping(engine, src, dst, weather_loss=-0.1)
