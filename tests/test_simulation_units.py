"""Unit tests for unit constants and formatting."""

import pytest

from repro.simulation.units import (
    DAY,
    GB,
    HOUR,
    KB,
    MB,
    MBPS,
    MINUTE,
    TB,
    format_bytes,
    format_duration,
)


def test_byte_units_scale():
    assert MB == 1024 * KB
    assert GB == 1024 * MB
    assert TB == 1024 * GB


def test_mbps_is_bytes_per_second():
    # 100 Mbps NIC = 12.5 decimal MB/s.
    assert 100 * MBPS == pytest.approx(12.5e6)


def test_time_units():
    assert HOUR == 60 * MINUTE
    assert DAY == 24 * HOUR


@pytest.mark.parametrize(
    "size,expected",
    [
        (512, "512 B"),
        (1536, "1.50 KB"),
        (3 * MB, "3.00 MB"),
        (2.5 * GB, "2.50 GB"),
        (1.2 * TB, "1.20 TB"),
    ],
)
def test_format_bytes(size, expected):
    assert format_bytes(size) == expected


@pytest.mark.parametrize(
    "seconds,expected",
    [
        (0.25, "250ms"),
        (5.0, "5.00s"),
        (90, "1m30s"),
        (3 * HOUR + 5 * MINUTE, "3h05m"),
        (2 * DAY + 3 * HOUR, "2d03h"),
    ],
)
def test_format_duration(seconds, expected):
    assert format_duration(seconds) == expected


def test_format_duration_negative():
    assert format_duration(-90) == "-1m30s"
