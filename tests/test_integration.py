"""Cross-module integration scenarios.

Each test exercises a full vertical slice: cloud substrate + monitoring +
decision + transfer (+ streaming), asserting system-level invariants that
no single-module test can see.
"""

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.core.decision import DecisionConfig
from repro.core.engine import SageEngine
from repro.core.strategy import SageStrategy
from repro.baselines import StaticParallel
from repro.simulation.units import GB, HOUR, MB
from repro.streaming import (
    GeoStreamRuntime,
    SageShipping,
    SiteSpec,
    StreamJob,
    PoissonSource,
    TumblingWindows,
    builtin_aggregate,
)


def make_engine(seed, **env_kwargs):
    env = CloudEnvironment(seed=seed, **env_kwargs)
    engine = SageEngine(
        env,
        deployment_spec={"NEU": 6, "WEU": 4, "EUS": 4, "NUS": 6},
    )
    engine.start(learning_phase=180.0)
    return engine


def test_transfers_and_streaming_share_the_network():
    """A bulk transfer and a stream run concurrently; both finish and the
    stream's results are exact despite the contention."""
    engine = make_engine(71, variability_sigma=0.0, glitches=False)
    job = StreamJob(
        name="bg",
        sites=[SiteSpec("NEU", [PoissonSource("s", rate=300.0, keys=["k"])])],
        aggregation_region="NUS",
        windows=TumblingWindows(10.0),
        aggregate=builtin_aggregate("count"),
    )
    runtime = GeoStreamRuntime(engine, job, SageShipping.factory(n_nodes=1))
    runtime.start()
    mt = engine.decisions.transfer("NEU", "NUS", 1 * GB, n_nodes=4)
    engine.run_until(engine.sim.now + 300.0)
    runtime.stop()
    engine.run_until(engine.sim.now + 40.0)
    assert mt.done
    assert runtime.results
    counted = sum(r.value for r in runtime.results)
    assert counted <= runtime.records_ingested()
    assert counted > 0.5 * runtime.records_ingested()


def test_costs_reconcile_with_bytes_moved():
    """Egress billed by the meter matches the wire bytes of completed
    sessions, hop by hop."""
    engine = make_engine(72, variability_sigma=0.0, glitches=False)
    before = engine.env.meter.snapshot()
    mt = engine.decisions.transfer("NEU", "NUS", 512 * MB, n_nodes=4)
    while not mt.done:
        engine.run_until(engine.sim.now + 10)
    spent = engine.env.meter.snapshot() - before
    expected = 0.0
    for session in mt.sessions:
        for flow in session.flows:
            expected += flow.transferred * len(flow.wan_hops())
    assert spent.egress_bytes == pytest.approx(expected, rel=1e-6)


def test_monitoring_free_rides_on_transfers():
    """During a managed transfer the agent suspends probes on the busy
    link but keeps learning from the transfer's achieved throughput."""
    engine = make_engine(73)
    est_before = engine.monitor.link_map.estimate("NEU", "NUS")
    mt = engine.decisions.transfer("NEU", "NUS", 2 * GB, n_nodes=4)
    while not mt.done:
        engine.run_until(engine.sim.now + 10)
    est_after = engine.monitor.link_map.estimate("NEU", "NUS")
    assert est_after.samples > est_before.samples
    assert engine.monitor.samples_suspended > 0


def test_sage_vs_naive_with_glitchy_cloud_many_seeds():
    """Across seeds on a glitchy cloud, the managed transfer is at least
    competitive in aggregate (it should never lose badly)."""
    ratios = []
    for seed in (81, 82, 83):
        e1 = make_engine(seed)
        naive = StaticParallel(n_nodes=6, streams=4).run(e1, "NEU", "NUS", 1 * GB)
        e2 = make_engine(seed)
        sage = SageStrategy(n_nodes=6).run(e2, "NEU", "NUS", 1 * GB)
        ratios.append(sage.seconds / naive.seconds)
    assert sum(ratios) / len(ratios) < 1.10
    # On calm stretches the plans coincide (ratio 1); SAGE must never be
    # the slower one.
    assert min(ratios) <= 1.0


def test_long_running_session_with_many_transfers_stays_consistent():
    """Back-to-back managed transfers: busy-VM tracking never leaks, and
    the calibrated gain stays within bounds."""
    engine = make_engine(74)
    for i in range(6):
        mt = engine.decisions.transfer(
            "NEU", "NUS", 256 * MB, n_nodes=3 + (i % 3)
        )
        while not mt.done:
            engine.run_until(engine.sim.now + 10)
    assert engine.decisions._busy_vms == set()
    lo, hi = engine.decisions.time_model.gain_bounds
    assert lo <= engine.decisions.time_model.gain <= hi


def test_vm_billing_and_finalize_after_experiments():
    engine = make_engine(75, variability_sigma=0.0, glitches=False)
    engine.run_until(2 * HOUR)
    engine.env.finalize()
    vm_hours = engine.env.meter.vm_seconds / HOUR
    assert vm_hours == pytest.approx(20 * 2, rel=0.01)  # 20 Small VMs
    assert engine.env.meter.vm_usd == pytest.approx(20 * 2 * 0.06, rel=0.01)
