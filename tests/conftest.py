"""Shared fixtures: small, fast simulated clouds."""

from __future__ import annotations

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.core.engine import SageEngine


@pytest.fixture
def stable_env() -> CloudEnvironment:
    """A cloud with variability switched off — deterministic link rates."""
    return CloudEnvironment(
        seed=1234,
        variability_sigma=0.0,
        diurnal_amplitude=0.0,
        glitches=False,
    )


@pytest.fixture
def noisy_env() -> CloudEnvironment:
    """A cloud with the standard variability stack."""
    return CloudEnvironment(seed=1234)


@pytest.fixture
def small_engine(noisy_env) -> SageEngine:
    """Warmed-up engine over a 4-region deployment (noisy cloud)."""
    engine = SageEngine(
        noisy_env,
        deployment_spec={"NEU": 4, "WEU": 3, "EUS": 3, "NUS": 4},
    )
    engine.start(learning_phase=120.0)
    return engine


@pytest.fixture
def stable_engine(stable_env) -> SageEngine:
    """Warmed-up engine over a 4-region deployment (stable cloud)."""
    engine = SageEngine(
        stable_env,
        deployment_spec={"NEU": 4, "WEU": 3, "EUS": 3, "NUS": 4},
    )
    engine.start(learning_phase=120.0)
    return engine
