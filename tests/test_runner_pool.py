"""Parallel sweep execution: byte-identity, caching, failure isolation.

The shard scenarios live in :mod:`tests._sweep_scenarios` (a plain
module, not a test file) so spawn-based pool workers can import them in
a fresh interpreter.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import Observer
from repro.runner import SweepRunner, SweepTask, derive_seed

TINY = "tests._sweep_scenarios:tiny"
FLAKY = "tests._sweep_scenarios:flaky"
PROBE = "tests._sweep_scenarios:seed_probe"


def suite(n_shards: int = 5) -> list[SweepTask]:
    return [
        SweepTask(name=f"tiny-{i}", scenario=TINY, config={"n": 3 + i})
        for i in range(n_shards)
    ]


def test_serial_and_parallel_digests_are_byte_identical():
    serial = SweepRunner(jobs=1, root_seed=2013).run(suite())
    par2 = SweepRunner(jobs=2, root_seed=2013).run(suite())
    par4 = SweepRunner(jobs=4, root_seed=2013).run(suite())
    assert serial.ok and par2.ok and par4.ok
    assert serial.canonical_lines() == par2.canonical_lines()
    assert serial.digest() == par2.digest() == par4.digest()


def test_warm_cache_executes_zero_simulations(tmp_path):
    cold = SweepRunner(jobs=2, cache_dir=tmp_path, root_seed=2013).run(suite())
    warm = SweepRunner(jobs=2, cache_dir=tmp_path, root_seed=2013).run(suite())
    assert cold.executed == len(suite())
    assert cold.cache_hits == 0
    assert warm.executed == 0
    assert warm.cache_hits == len(suite())
    assert warm.hit_ratio == 1.0
    assert all(s.cached for s in warm.shards)
    assert warm.digest() == cold.digest()


def test_root_seed_changes_every_shard(tmp_path):
    a = SweepRunner(jobs=1, cache_dir=tmp_path, root_seed=1).run(suite(2))
    b = SweepRunner(jobs=1, cache_dir=tmp_path, root_seed=2).run(suite(2))
    assert a.digest() != b.digest()
    # Different seeds mean different cache keys — second run was all misses.
    assert b.cache_hits == 0


def test_shard_failure_is_isolated():
    tasks = [
        SweepTask(name="ok-0", scenario=FLAKY, config={"n": 2}),
        SweepTask(name="boom", scenario=FLAKY, config={"explode": True}),
        SweepTask(name="ok-1", scenario=FLAKY, config={"n": 2}),
    ]
    report = SweepRunner(jobs=2).run(tasks)
    assert not report.ok
    by_name = {s.name: s for s in report.shards}
    assert not by_name["boom"].ok
    assert "scripted shard failure" in by_name["boom"].error
    assert by_name["ok-0"].ok and by_name["ok-1"].ok
    assert by_name["ok-0"].result is not None


def test_failed_shard_is_never_cached(tmp_path):
    tasks = [SweepTask(name="boom", scenario=FLAKY, config={"explode": True})]
    SweepRunner(jobs=1, cache_dir=tmp_path).run(tasks)
    rerun = SweepRunner(jobs=1, cache_dir=tmp_path).run(tasks)
    assert rerun.cache_hits == 0
    assert not rerun.ok


def test_shard_seeds_are_derived_from_name_only():
    tasks = [
        SweepTask(name="p-a", scenario=PROBE, config={}),
        SweepTask(name="p-b", scenario=PROBE, config={"irrelevant": 9}),
    ]
    report = SweepRunner(jobs=1, root_seed=77).run(tasks)
    for shard in report.shards:
        assert shard.seed == derive_seed(77, shard.name)
        assert shard.result == {"seed": shard.seed}


def test_duplicate_shard_names_rejected():
    tasks = [
        SweepTask(name="same", scenario=TINY, config={}),
        SweepTask(name="same", scenario=TINY, config={"n": 9}),
    ]
    with pytest.raises(ValueError, match="duplicate shard names"):
        SweepRunner(jobs=1).run(tasks)


def test_runner_metrics_fold_into_obs(tmp_path):
    obs = Observer()
    tasks = suite(3) + [
        SweepTask(name="boom", scenario=FLAKY, config={"explode": True})
    ]
    SweepRunner(jobs=1, cache_dir=tmp_path, observer=obs).run(tasks)
    snap = {s.name: s.value for s in obs.registry.snapshot().values()}
    assert snap["runner_shards_total"] == 4
    assert snap["runner_shard_failures_total"] == 1
    assert snap["runner_cache_misses_total"] == 4
    assert snap["runner_shards_executed_total"] == 4
    SweepRunner(jobs=1, cache_dir=tmp_path, observer=obs).run(tasks)
    snap = {s.name: s.value for s in obs.registry.snapshot().values()}
    assert snap["runner_cache_hits_total"] == 3  # failure was never cached


def test_jsonl_artifact_has_shards_and_summary(tmp_path):
    report = SweepRunner(jobs=1).run(suite(2))
    path = report.write_jsonl(tmp_path / "sweep.jsonl")
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert [line["kind"] for line in lines] == ["shard", "shard", "summary"]
    assert lines[-1]["digest"] == report.digest()
    assert lines[-1]["failures"] == 0
