"""Unit + property tests for the sample-integration strategies."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitor.estimators import (
    EwmaEstimator,
    LastSampleEstimator,
    SlidingMeanEstimator,
    WeightedSampleEstimator,
    make_estimator,
)


def feed(est, values, dt=60.0):
    for i, v in enumerate(values):
        est.update(i * dt, v)
    return est


# ----------------------------------------------------------------------
# Individual strategies
# ----------------------------------------------------------------------
def test_last_sample_tracks_exactly():
    est = feed(LastSampleEstimator(), [5.0, 7.0, 3.0])
    assert est.mean == 3.0
    assert est.std == 0.0
    assert est.samples_seen == 3


def test_sliding_mean_window():
    est = SlidingMeanEstimator(window=3)
    feed(est, [1.0, 2.0, 3.0, 4.0])
    assert est.mean == pytest.approx(3.0)  # last three
    assert est.std == pytest.approx(np.std([2, 3, 4]))


def test_sliding_mean_validates():
    with pytest.raises(ValueError):
        SlidingMeanEstimator(window=0)


def test_ewma_converges_to_level():
    est = feed(EwmaEstimator(alpha=0.3), [10.0] * 50)
    assert est.mean == pytest.approx(10.0)
    assert est.std == pytest.approx(0.0, abs=1e-9)


def test_ewma_validates_alpha():
    with pytest.raises(ValueError):
        EwmaEstimator(alpha=0.0)


def test_wsi_first_sample_initialises():
    est = WeightedSampleEstimator()
    est.update(0.0, 8.0)
    assert est.mean == 8.0
    assert est.std > 0  # seeded uncertainty


def test_wsi_outlier_mostly_ignored_in_stable_environment():
    est = WeightedSampleEstimator(history=8)
    feed(est, [10.0] * 40)
    before = est.mean
    est.update(41 * 60.0, 100.0)  # wild outlier
    # The Gaussian trust term suppresses it: move < 20 % toward it.
    assert est.mean < before + 0.2 * (100.0 - before)


def test_wsi_follows_genuine_level_shift():
    est = WeightedSampleEstimator(history=8)
    feed(est, [10.0] * 30)
    for i in range(30, 120):
        est.update(i * 60.0, 20.0)
    assert est.mean == pytest.approx(20.0, rel=0.1)


def test_wsi_smoother_than_last_sample_on_noise():
    rng = np.random.default_rng(0)
    truth = 10.0
    samples = truth + rng.normal(0, 2.0, 400)
    wsi = WeightedSampleEstimator()
    mon = LastSampleEstimator()
    wsi_err, mon_err = [], []
    for i, s in enumerate(samples):
        wsi.update(i * 60.0, s)
        mon.update(i * 60.0, s)
        if i > 20:
            wsi_err.append(abs(wsi.mean - truth))
            mon_err.append(abs(mon.mean - truth))
    assert np.mean(wsi_err) < 0.5 * np.mean(mon_err)


def test_wsi_rarity_weights_sparse_samples_higher():
    est = WeightedSampleEstimator(history=8, time_reference=600.0)
    feed(est, [10.0] * 20)
    w_dense = est.weight(20 * 60.0, 12.0, dt=10.0)
    w_sparse = est.weight(20 * 60.0, 12.0, dt=600.0)
    assert w_sparse > w_dense


def test_wsi_validates():
    with pytest.raises(ValueError):
        WeightedSampleEstimator(history=0)
    with pytest.raises(ValueError):
        WeightedSampleEstimator(time_reference=0.0)


def test_time_order_enforced():
    est = WeightedSampleEstimator()
    est.update(100.0, 1.0)
    with pytest.raises(ValueError):
        est.update(50.0, 1.0)


def test_factory():
    for name in ("Monitor", "LSI", "EWMA", "WSI"):
        est = make_estimator(name)
        assert est.name == name
    with pytest.raises(ValueError, match="unknown strategy"):
        make_estimator("nope")


# ----------------------------------------------------------------------
# Comparative property: the E2 ranking on synthetic cloud-like traces
# ----------------------------------------------------------------------
def test_wsi_beats_monitor_on_ar1_noise():
    """On an AR(1)-noisy level (cloud-like), WSI tracks the level better
    than trusting the last sample — the core E2 claim."""
    rng = np.random.default_rng(42)
    n = 600
    level = np.where(np.arange(n) < 300, 10.0, 14.0)
    x = 0.0
    noise = []
    for _ in range(n):
        x = 0.9 * x + rng.normal(0, 0.1)
        noise.append(math.exp(x))
    observed = level * np.array(noise)
    strategies = {
        "Monitor": LastSampleEstimator(),
        "LSI": SlidingMeanEstimator(window=30),
        "WSI": WeightedSampleEstimator(),
    }
    errors = {name: [] for name in strategies}
    for i in range(n):
        for name, est in strategies.items():
            est.update(i * 60.0, observed[i])
            if i > 30:
                errors[name].append(abs(est.mean - level[i]) / level[i])
    mean_err = {k: float(np.mean(v)) for k, v in errors.items()}
    assert mean_err["WSI"] < mean_err["Monitor"]


# ----------------------------------------------------------------------
# Hypothesis invariants
# ----------------------------------------------------------------------
positive_floats = st.floats(min_value=0.01, max_value=1e6)


@given(st.lists(positive_floats, min_size=1, max_size=100))
@settings(max_examples=60, deadline=None)
def test_property_estimates_within_sample_range(values):
    """Every estimator's mean stays inside [min, max] of what it saw."""
    for name in ("Monitor", "LSI", "EWMA", "WSI"):
        est = make_estimator(name)
        feed(est, values)
        assert min(values) - 1e-6 <= est.mean <= max(values) + 1e-6


@given(st.lists(positive_floats, min_size=2, max_size=100))
@settings(max_examples=60, deadline=None)
def test_property_std_nonnegative_and_finite(values):
    for name in ("LSI", "EWMA", "WSI"):
        est = make_estimator(name)
        feed(est, values)
        assert est.std >= 0.0
        assert math.isfinite(est.std)


@given(positive_floats, st.integers(min_value=1, max_value=200))
@settings(max_examples=60, deadline=None)
def test_property_constant_stream_converges(value, n):
    """A constant signal is learned exactly by every strategy."""
    for name in ("Monitor", "LSI", "EWMA", "WSI"):
        est = make_estimator(name)
        feed(est, [value] * n)
        assert est.mean == pytest.approx(value, rel=1e-6)


@given(st.lists(positive_floats, min_size=1, max_size=60), positive_floats)
@settings(max_examples=60, deadline=None)
def test_property_wsi_weight_in_unit_interval(values, sample):
    est = WeightedSampleEstimator()
    feed(est, values)
    w = est.weight(len(values) * 60.0, sample, dt=60.0)
    assert 0.0 <= w <= 1.0
