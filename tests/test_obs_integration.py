"""End-to-end observability: instrumented engine + streaming runtime.

The headline acceptance check lives here: the ``window.global_emit``
spans recorded during a streaming run must reconstruct the same
end-to-end latency distribution as :class:`LatencyStats` computes from
the emitted results.
"""

import numpy as np
import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.core.engine import SageEngine
from repro.obs import Observer
from repro.obs.exporters import read_trace_jsonl
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.operators import builtin_aggregate
from repro.streaming.runtime import GeoStreamRuntime
from repro.streaming.shipping import SageShipping
from repro.streaming.sources import PoissonSource
from repro.streaming.windows import TumblingWindows


def make_engine(observer, seed=13):
    env = CloudEnvironment(seed=seed, variability_sigma=0.0, glitches=False)
    engine = SageEngine(
        env,
        deployment_spec={"NEU": 3, "WEU": 3, "NUS": 3},
        observer=observer,
    )
    engine.start(learning_phase=120.0)
    return engine


def make_job(rate=200.0, sites=("NEU", "WEU")):
    return StreamJob(
        name="obs-job",
        sites=[
            SiteSpec(
                region,
                [PoissonSource(f"src-{region}", rate=rate, keys=["k"])],
            )
            for region in sites
        ],
        aggregation_region="NUS",
        windows=TumblingWindows(10.0),
        aggregate=builtin_aggregate("count"),
    )


@pytest.fixture(scope="module")
def run():
    obs = Observer()
    engine = make_engine(obs)
    runtime = GeoStreamRuntime(
        engine, make_job(), SageShipping.factory(n_nodes=2)
    )
    runtime.run_for(80.0)
    return obs, engine, runtime


def test_window_spans_reconstruct_latency_stats(run):
    obs, _engine, runtime = run
    stats = runtime.latency_stats()
    spans = obs.tracer.find("window.global_emit")
    assert len(spans) == len(runtime.results) == stats.count > 0
    latencies = np.array([s.end - s.start for s in spans])
    assert float(np.percentile(latencies, 50)) == pytest.approx(stats.p50)
    assert float(np.percentile(latencies, 95)) == pytest.approx(stats.p95)
    assert float(np.percentile(latencies, 99)) == pytest.approx(stats.p99)
    assert float(latencies.max()) == pytest.approx(stats.max)
    assert float(latencies.mean()) == pytest.approx(stats.mean)
    # The registry histogram saw the same distribution.
    hist = obs.registry.histogram("stream_window_latency_seconds")
    assert hist.count == stats.count
    assert hist.percentile(50) == pytest.approx(stats.p50)


def test_site_and_ship_instrumentation(run):
    obs, _engine, runtime = run
    snap = obs.registry.snapshot()
    for site in ("NEU", "WEU"):
        ingested = snap[f'stream_records_ingested_total{{site="{site}"}}']
        processed = snap[f'stream_records_processed_total{{site="{site}"}}']
        assert ingested.value == runtime.sites[site].records_ingested
        assert processed.value == runtime.sites[site].records_processed
    ship_spans = obs.tracer.find("ship.batch")
    assert ship_spans and all(s.finished for s in ship_spans)
    shipped = sum(
        v.value
        for k, v in snap.items()
        if k.startswith("ship_bytes_total")
    )
    assert shipped == pytest.approx(runtime.wan_bytes())
    # Site-side window-close spans were recorded too.
    assert obs.tracer.find("window.site_close")


def test_monitor_and_sim_metrics(run):
    obs, engine, _runtime = run
    snap = obs.registry.snapshot()
    assert snap["monitor_samples_total"].value == engine.monitor.samples_taken
    assert snap["sim_events_total"].value == pytest.approx(
        engine.sim.events_processed
    )
    assert snap["sim_virtual_time_seconds"].value == engine.sim.now
    assert snap["sim_wall_seconds_total"].value > 0
    err = snap["monitor_estimator_relative_error"]
    assert err.count > 0 and err.p50 >= 0


def test_decision_predicted_vs_achieved_pairing():
    obs = Observer()
    engine = make_engine(obs, seed=17)
    mt = engine.decisions.transfer("NEU", "NUS", 50e6, n_nodes=2)
    while not mt.done:
        engine.run_until(engine.sim.now + 10)
    snap = obs.registry.snapshot()
    assert snap["decision_transfers_total"].value == 1
    assert snap["decision_predicted_seconds"].count == 1
    assert snap["decision_achieved_seconds"].count == 1
    ratio = obs.registry.histogram("decision_achieved_over_predicted")
    assert ratio.count == 1 and ratio.values[0] > 0
    strategy = snap['decision_strategy_total{strategy="fixed-nodes"}']
    assert strategy.value == 1
    (span,) = obs.tracer.find("transfer.managed")
    assert span.finished
    assert span.duration == pytest.approx(mt.elapsed)
    assert span.attrs["achieved_seconds"] == pytest.approx(mt.elapsed)
    assert snap["decision_plans_total"].value >= 1


def test_disabled_observer_records_nothing():
    env = CloudEnvironment(seed=13, variability_sigma=0.0, glitches=False)
    engine = SageEngine(env, deployment_spec={"NEU": 2, "NUS": 2})
    engine.start(learning_phase=60.0)
    assert not engine.observer.enabled
    assert engine.observer.registry.snapshot() == {}
    assert len(engine.observer.tracer) == 0


def test_export_round_trip_from_run(run, tmp_path):
    obs, _engine, _runtime = run
    trace = tmp_path / "run.jsonl"
    prom = tmp_path / "run.prom"
    written = obs.export(trace_path=str(trace), metrics_path=str(prom))
    assert written["spans"] == len(obs.tracer.spans)
    assert written["series"] == len(obs.registry.snapshot())
    back = read_trace_jsonl(str(trace))
    assert len(back) == written["spans"]
    assert "# TYPE" in prom.read_text()
