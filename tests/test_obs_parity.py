"""Null/real API parity, enforced by reflection.

Every observability primitive ships a disabled twin (``NullCounter``,
``NullTracer``, ...). Components grab handles once and drive them from
hot paths, so a Null twin missing one attribute is a latent
``AttributeError`` that only fires when observability is toggled off —
the exact configuration the test suite exercises least. This test walks
each real/null pair and asserts the public surfaces match *both ways*:

* everything public on the real object exists on the null twin (the
  disabled path can never crash a caller written against the real API);
* everything public on the null twin exists on the real object (a twin
  cannot grow convenience API the real object lacks — that hides bugs
  in the enabled path instead);
* methods keep identical signatures, so calls valid against one are
  valid against the other.
"""

from __future__ import annotations

import inspect

import pytest

from repro.obs import (
    NULL_METER,
    NULL_OBSERVER,
    NULL_PROFILER,
    NULL_RECORDER,
    NULL_SPAN,
    NULL_STAGE_TIMER,
    NULL_TRACER,
    FlightRecorder,
    MetricsRegistry,
    Observer,
    StageProfiler,
    Tracer,
)
from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
)

#: Dunders that are part of the instrumentation contract (hot paths use
#: them via ``with``, ``len``, and iteration).
CONTRACT_DUNDERS = {"__len__", "__iter__", "__enter__", "__exit__"}


def public_surface(obj) -> set[str]:
    return {
        name
        for name in dir(obj)
        if not name.startswith("_") or name in CONTRACT_DUNDERS
    }


def _real_tracer_span():
    tracer = Tracer()
    return tracer.start_span("s", hint=1)


def _real_stage_timer():
    return StageProfiler().timer("stage")


def _real_meter():
    return StageProfiler().meter("records")


PAIRS = [
    ("observer", Observer(), NULL_OBSERVER),
    ("registry", MetricsRegistry(), NULL_REGISTRY),
    ("counter", Counter("c"), NULL_COUNTER),
    ("gauge", Gauge("g"), NULL_GAUGE),
    ("histogram", Histogram("h"), NULL_HISTOGRAM),
    ("tracer", Tracer(), NULL_TRACER),
    ("span", _real_tracer_span(), NULL_SPAN),
    ("profiler", StageProfiler(), NULL_PROFILER),
    ("stage_timer", _real_stage_timer(), NULL_STAGE_TIMER),
    ("meter", _real_meter(), NULL_METER),
    ("recorder", FlightRecorder(), NULL_RECORDER),
]


@pytest.mark.parametrize(
    "real,null", [(r, n) for _, r, n in PAIRS], ids=[p[0] for p in PAIRS]
)
def test_null_twin_covers_real_surface(real, null):
    missing = public_surface(real) - public_surface(null)
    assert not missing, (
        f"{type(null).__name__} lacks {sorted(missing)} — a component "
        f"holding a disabled handle would crash using them"
    )


@pytest.mark.parametrize(
    "real,null", [(r, n) for _, r, n in PAIRS], ids=[p[0] for p in PAIRS]
)
def test_real_covers_null_twin_surface(real, null):
    extra = public_surface(null) - public_surface(real)
    assert not extra, (
        f"{type(null).__name__} exposes {sorted(extra)} that "
        f"{type(real).__name__} lacks — twins must not grow private API"
    )


@pytest.mark.parametrize(
    "real,null", [(r, n) for _, r, n in PAIRS], ids=[p[0] for p in PAIRS]
)
def test_method_signatures_match(real, null):
    for name in sorted(public_surface(real)):
        real_attr = inspect.getattr_static(type(real), name, None)
        null_attr = inspect.getattr_static(type(null), name, None)
        if not (inspect.isfunction(real_attr) and
                inspect.isfunction(null_attr)):
            continue  # data attributes / properties: presence suffices
        real_sig = inspect.signature(real_attr)
        null_sig = inspect.signature(null_attr)
        real_params = list(real_sig.parameters)
        null_params = list(null_sig.parameters)
        assert real_params == null_params, (
            f"{type(real).__name__}.{name}{real_sig} vs "
            f"{type(null).__name__}.{name}{null_sig}"
        )


def test_null_handles_accept_real_call_shapes(tmp_path):
    """Drive each null twin exactly as instrumented hot paths do."""
    obs = NULL_OBSERVER
    obs.bind_clock(lambda: 1.0)
    obs.counter("c", site="NEU").inc(3)
    obs.gauge("g").set(1.5)
    obs.histogram("h").observe(0.25)
    with obs.stage("site.drain"):
        obs.meter("records").mark(10)
    with obs.span("unit", site="NEU"):
        pass
    detached = obs.start_span("detached")
    detached.set(k=1).finish(ok=True)
    obs.record_span("window", 0.0, 10.0, site="NEU")
    obs.recorder.record("event", fn="cb")
    assert obs.recorder.dump(str(tmp_path / "flight.jsonl")) == 0
    assert obs.profiler.snapshot(wall_seconds=1.0)["stages"] == {}
    assert len(obs.registry) == 0
    assert obs.export() == {"spans": 0, "series": 0, "flight": 0}
