"""Tests for the shipping backends."""

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.core.engine import SageEngine
from repro.simulation.units import KB, MB
from repro.streaming.events import Batch, Record
from repro.streaming.shipping import BlobShipping, DirectShipping, SageShipping


@pytest.fixture
def engine():
    env = CloudEnvironment(seed=61, variability_sigma=0.0, glitches=False)
    eng = SageEngine(env, deployment_spec={"NEU": 3, "WEU": 3, "NUS": 3})
    eng.start(learning_phase=120.0)
    return eng


def batch(region="NEU", size=512 * KB, now=0.0):
    return Batch(
        [Record(now, "k", 1.0, origin=region, size_bytes=size)],
        region,
        created_at=now,
    )


def ship_and_wait(engine, backend, b, timeout=600.0):
    done = []
    backend.ship(b, lambda bb: done.append(engine.sim.now))
    deadline = engine.sim.now + timeout
    while not done and engine.sim.now < deadline:
        engine.run_until(min(engine.sim.now + 5, deadline))
    assert done, "batch was not delivered"
    return done[0]


def test_direct_shipping_delivers(engine):
    src = engine.deployment.vms("NEU")[0]
    dst = engine.deployment.vms("NUS")[0]
    backend = DirectShipping(engine, src, dst, streams=2)
    ship_and_wait(engine, backend, batch())
    assert backend.batches_shipped == 1
    assert backend.bytes_shipped == 512 * KB


def test_sage_shipping_reuses_plan_until_ttl(engine):
    backend = SageShipping(engine, "NEU", "NUS", n_nodes=2, plan_ttl=300.0)
    ship_and_wait(engine, backend, batch())
    ship_and_wait(engine, backend, batch())
    assert backend.plans_built == 1  # second batch rode the cached plan
    engine.run_until(engine.sim.now + 301.0)
    ship_and_wait(engine, backend, batch())
    assert backend.plans_built == 2  # TTL expired → fresh plan


def test_sage_shipping_coordination_latency(engine):
    eager = SageShipping(engine, "NEU", "NUS", n_nodes=1,
                         coordination_latency=0.0)
    t0 = engine.sim.now
    fast = ship_and_wait(engine, eager, batch(size=64 * KB)) - t0
    slow_backend = SageShipping(engine, "NEU", "NUS", n_nodes=1,
                                coordination_latency=5.0)
    t1 = engine.sim.now
    slow = ship_and_wait(engine, slow_backend, batch(size=64 * KB)) - t1
    assert slow == pytest.approx(fast + 5.0, abs=0.5)


def test_sage_shipping_same_region_is_local(engine):
    backend = SageShipping(engine, "NEU", "NEU", coordination_latency=0.0)
    t0 = engine.sim.now
    elapsed = ship_and_wait(engine, backend, batch(size=1 * MB)) - t0
    assert elapsed < 1.0  # intra-DC: NIC speed, no WAN planning


def test_blob_shipping_stages_through_store(engine):
    src = engine.deployment.vms("NEU")[0]
    dst = engine.deployment.vms("NUS")[0]
    backend = BlobShipping(engine, src, dst)
    before_puts = backend.store.puts
    ship_and_wait(engine, backend, batch(size=2 * MB))
    assert backend.store.puts == before_puts + 1
    assert backend.store.gets >= 1


def test_blob_shipping_slower_than_direct(engine):
    src = engine.deployment.vms("NEU")[0]
    dst = engine.deployment.vms("NUS")[0]
    t0 = engine.sim.now
    direct_t = ship_and_wait(
        engine, DirectShipping(engine, src, dst, streams=2), batch(size=8 * MB)
    ) - t0
    t1 = engine.sim.now
    blob_t = ship_and_wait(
        engine, BlobShipping(engine, src, dst), batch(size=8 * MB)
    ) - t1
    assert blob_t > direct_t  # two passes + HTTP latency


def test_factories_build_from_vms(engine):
    src_vms = engine.deployment.vms("NEU")
    dst_vm = engine.deployment.vms("NUS")[0]
    for factory in (
        DirectShipping.factory(streams=2),
        SageShipping.factory(n_nodes=2),
        BlobShipping.factory(),
    ):
        backend = factory(engine, src_vms, dst_vm)
        ship_and_wait(engine, backend, batch(size=128 * KB))
