"""The content-addressed result cache: keying, durability, corruption."""

from __future__ import annotations

import json

import pytest

from repro.runner.cache import ResultCache, code_fingerprint


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache", fingerprint="f" * 64)


def test_roundtrip(cache):
    key = cache.key("tiny", {"n": 3}, 42)
    assert cache.get(key) is None
    cache.put(key, {"answer": 42, "draws": [1, 2, 3]})
    assert cache.get(key) == {"answer": 42, "draws": [1, 2, 3]}
    assert cache.hits == 1
    assert cache.misses == 1
    assert len(cache) == 1


def test_key_sensitivity(cache):
    base = cache.key("tiny", {"n": 3}, 42)
    assert cache.key("tiny", {"n": 4}, 42) != base
    assert cache.key("tiny", {"n": 3}, 43) != base
    assert cache.key("other", {"n": 3}, 42) != base
    other = ResultCache(cache.root, fingerprint="0" * 64)
    assert other.key("tiny", {"n": 3}, 42) != base


def test_key_ignores_config_construction_order(cache):
    assert cache.key("t", {"a": 1, "b": 2}, 7) == cache.key(
        "t", {"b": 2, "a": 1}, 7
    )


def test_fingerprint_change_invalidates_entries(tmp_path):
    old = ResultCache(tmp_path, fingerprint="a" * 64)
    old.put(old.key("tiny", {}, 1), {"v": 1})
    new = ResultCache(tmp_path, fingerprint="b" * 64)
    assert new.get(new.key("tiny", {}, 1)) is None


def test_corrupt_entry_is_a_miss_and_rewritable(cache):
    key = cache.key("tiny", {}, 5)
    path = cache.put(key, {"v": 5})
    path.write_text("{not json", encoding="utf-8")
    assert cache.get(key) is None
    cache.put(key, {"v": 5})
    assert cache.get(key) == {"v": 5}


def test_entry_with_foreign_key_is_a_miss(cache):
    key = cache.key("tiny", {}, 6)
    path = cache.put(key, {"v": 6})
    entry = json.loads(path.read_text(encoding="utf-8"))
    entry["key"] = "0" * 64
    path.write_text(json.dumps(entry), encoding="utf-8")
    assert cache.get(key) is None


def test_code_fingerprint_is_stable_and_hex():
    fp = code_fingerprint()
    assert fp == code_fingerprint()
    assert len(fp) == 64
    int(fp, 16)


def test_default_fingerprint_is_code_fingerprint(tmp_path):
    assert ResultCache(tmp_path).fingerprint == code_fingerprint()
