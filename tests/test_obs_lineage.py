"""Causal trace context and per-window lineage."""

import math

from repro.cloud.deployment import CloudEnvironment
from repro.core.engine import SageEngine
from repro.obs import BatchTrace, Observer, SiteLeg, WindowLineage, trace_id
from repro.obs.lineage import HOP_NAMES, Hop
from repro.streaming.batching import Batcher, SizeBatchPolicy
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.events import Record
from repro.streaming.hierarchy import HubAggregator
from repro.streaming.operators import PartialAggregate, builtin_aggregate
from repro.streaming.runtime import GeoStreamRuntime
from repro.streaming.shipping import SageShipping
from repro.streaming.sources import PoissonSource
from repro.streaming.windows import TumblingWindows, Window


# ----------------------------------------------------------------------
# Trace primitives
# ----------------------------------------------------------------------
def test_trace_id_is_origin_slash_seq():
    assert trace_id("NEU", 3) == "NEU/3"
    assert trace_id("WEU", 0) == "WEU/0"


def test_hop_lifecycle_and_roundtrip():
    hop = Hop(link="NEU->NUS", backend="sage", sent_at=10.0)
    assert not hop.delivered
    assert math.isnan(hop.transit_s)
    hop.arrived_at = 12.5
    assert hop.delivered
    assert hop.transit_s == 2.5
    again = Hop.from_dict(hop.to_dict())
    assert again == hop
    # A never-delivered hop round-trips too (arrived_at stays NaN).
    lost = Hop.from_dict({"link": "a->b", "backend": "udp", "sent_at": 1.0})
    assert not lost.delivered


def test_batch_trace_stamp_and_hops():
    trace = BatchTrace.stamp("NEU", 7, created_at=5.0)
    assert trace.trace_id == "NEU/7"
    assert trace.attempts == 0
    assert math.isnan(trace.first_sent_at)
    assert not trace.delivered
    h1 = trace.begin_hop("NEU->NUS", "sage", 6.0)
    h2 = trace.begin_hop("NEU->NUS", "sage", 9.0)  # a retry
    assert trace.attempts == 2
    assert trace.first_sent_at == 6.0
    h2.arrived_at = 10.0
    assert trace.delivered
    # delivered_at reads the latest *attempt* that landed (append order).
    assert trace.delivered_at == 10.0
    h1.arrived_at = 11.0  # the late first copy lands after the retry
    assert trace.delivered_at == 10.0
    payload = trace.to_dict()
    assert payload["trace_id"] == "NEU/7"
    assert len(payload["hops"]) == 2
    assert payload["parents"] == []


# ----------------------------------------------------------------------
# SiteLeg folding
# ----------------------------------------------------------------------
def test_site_leg_absorbs_and_dedups_traces():
    leg = SiteLeg(site="NEU")
    trace = BatchTrace.stamp("NEU", 1, created_at=10.0)
    trace.begin_hop("NEU->NUS", "sage", 11.0).arrived_at = 13.0
    # A batch carrying two partials for the same window absorbs twice
    # with the same trace: partials/records accumulate, the batch and
    # its attempts count once.
    leg.absorb(trace, records=3, nbytes=200.0, now=13.0)
    leg.absorb(trace, records=2, nbytes=150.0, now=13.0)
    assert leg.partials == 2
    assert leg.records == 5
    assert leg.bytes == 350.0
    assert leg.batches == 1
    assert leg.attempts == 1
    assert leg.created_at == 10.0
    assert leg.first_sent_at == 11.0
    assert leg.arrived_at == 13.0
    assert leg.complete


def test_site_leg_tracks_extremes_across_batches():
    leg = SiteLeg(site="NEU")
    early = BatchTrace.stamp("NEU", 1, created_at=10.0)
    early.begin_hop("l", "b", 11.0)
    late = BatchTrace.stamp("NEU", 2, created_at=20.0)
    late.begin_hop("l", "b", 21.0)
    leg.absorb(late, 1, 100.0, now=23.0)
    leg.absorb(early, 1, 100.0, now=14.0)
    assert leg.batches == 2
    assert leg.created_at == 10.0  # earliest cut
    assert leg.first_sent_at == 11.0  # earliest send
    assert leg.arrived_at == 23.0  # latest arrival


def test_site_leg_without_trace_stays_incomplete():
    leg = SiteLeg(site="NEU")
    leg.absorb(None, records=4, nbytes=100.0, now=9.0)
    assert leg.partials == 1 and leg.records == 4
    assert leg.batches == 0
    assert not leg.complete  # no cut/send timestamps without a trace


def test_site_leg_roundtrip():
    leg = SiteLeg(site="WEU")
    trace = BatchTrace.stamp("WEU", 5, created_at=2.0)
    trace.begin_hop("WEU->NUS", "direct", 3.0)
    leg.absorb(trace, 7, 640.0, now=6.0)
    again = SiteLeg.from_dict(leg.to_dict())
    assert again.site == "WEU"
    assert again.records == 7 and again.batches == 1 and again.attempts == 1
    assert again.created_at == 2.0
    assert again.first_sent_at == 3.0
    assert again.arrived_at == 6.0
    assert again.complete
    # Legacy payloads (no timestamps) restore without provenance.
    bare = SiteLeg.from_dict({"site": "WEU"})
    assert not bare.complete and bare.records == 0


# ----------------------------------------------------------------------
# WindowLineage
# ----------------------------------------------------------------------
def _complete_leg(site="NEU", created=12.0, sent=13.0, arrived=16.0):
    leg = SiteLeg(site=site)
    trace = BatchTrace.stamp(site, 0, created_at=created)
    trace.begin_hop(f"{site}->NUS", "sage", sent)
    leg.absorb(trace, 3, 200.0, now=arrived)
    return leg


def test_window_lineage_breakdown_covers_all_hops():
    lineage = WindowLineage(
        window_start=0.0,
        window_end=10.0,
        key="k",
        emitted_at=21.0,
        legs=(_complete_leg(),),
    )
    assert lineage.complete
    assert lineage.e2e_latency == 11.0
    assert lineage.sites == ("NEU",)
    assert lineage.egress_bytes == 200.0
    parts = lineage.breakdown()["NEU"]
    assert set(parts) == set(HOP_NAMES)
    assert parts["site_close"] == 2.0  # window end 10 -> cut 12
    assert parts["queue"] == 1.0  # cut 12 -> sent 13
    assert parts["transit"] == 3.0  # sent 13 -> arrived 16
    assert parts["merge"] == 5.0  # arrived 16 -> emitted 21
    # The hops tile the end-to-end latency exactly.
    assert math.isclose(sum(parts.values()), lineage.e2e_latency)


def test_window_lineage_incomplete_without_legs():
    empty = WindowLineage(0.0, 10.0, "k", 15.0, legs=())
    assert not empty.complete
    payload = WindowLineage(
        0.0, 10.0, "k", 15.0, legs=(_complete_leg(),)
    ).to_dict()
    assert payload["legs"][0]["site"] == "NEU"
    assert payload["emitted_at"] == 15.0


# ----------------------------------------------------------------------
# Stamping at the batcher, parent linkage at the hub
# ----------------------------------------------------------------------
def test_batcher_stamps_unique_traces():
    batcher = Batcher(SizeBatchPolicy(max_bytes=100.0), origin="NEU")
    ids = []
    for i in range(3):
        batch = batcher.offer(
            Record(float(i), "k", 1, size_bytes=150.0), now=float(i)
        )
        assert batch is not None
        assert batch.trace is not None
        assert batch.trace.trace_id == trace_id("NEU", batch.seq)
        assert batch.trace.created_at == float(i)
        ids.append(batch.trace.trace_id)
    assert len(set(ids)) == 3


def test_hub_links_parent_traces():
    env = CloudEnvironment(seed=71, variability_sigma=0.0, glitches=False)
    engine = SageEngine(env, deployment_spec={"NEU": 2, "NUS": 2})
    engine.start(learning_phase=30.0)
    job = StreamJob(
        name="h",
        sites=[SiteSpec("NEU", [PoissonSource("s", rate=1.0)])],
        aggregation_region="NUS",
        windows=TumblingWindows(10.0),
        aggregate=builtin_aggregate("count"),
    )
    shipped = []

    class _Sink:
        bytes_shipped = 0.0

        def ship(self, batch, on_delivered):
            shipped.append(batch)

    hub = HubAggregator(engine, job, "NEU", _Sink(), hold=1.0)
    # Child batches go through a batcher so they carry stamped traces.
    batcher = Batcher(SizeBatchPolicy(1.0), origin="NEU")
    for _ in range(2):
        pa = PartialAggregate(Window(0.0, 10.0), "k", state=1, count=1)
        record = Record(10.0, "k", pa, origin="NEU", size_bytes=200.0)
        hub.deliver(batcher.offer(record, now=10.0))
    engine.run_until(engine.sim.now + 10.0)
    hub.stop()
    assert shipped
    out = shipped[0]
    assert out.trace is not None
    assert set(out.trace.parents) == {"NEU/0", "NEU/1"}


# ----------------------------------------------------------------------
# End-to-end: every emitted window carries complete lineage
# ----------------------------------------------------------------------
def test_runtime_results_carry_complete_lineage():
    obs = Observer()
    env = CloudEnvironment(seed=13, variability_sigma=0.0, glitches=False)
    engine = SageEngine(
        env, deployment_spec={"NEU": 3, "WEU": 3, "NUS": 3}, observer=obs
    )
    engine.start(learning_phase=120.0)
    job = StreamJob(
        name="lin",
        sites=[
            SiteSpec(r, [PoissonSource(f"src-{r}", rate=200.0, keys=["k1"])])
            for r in ("NEU", "WEU")
        ],
        aggregation_region="NUS",
        windows=TumblingWindows(10.0),
        aggregate=builtin_aggregate("count"),
    )
    runtime = GeoStreamRuntime(engine, job, SageShipping.factory(n_nodes=2))
    runtime.run_for(100.0)
    stats = runtime.lineage_stats()
    assert stats["results"] > 0
    assert stats["with_lineage"] == stats["results"]
    assert stats["complete"] == stats["results"]
    for result in runtime.results:
        lineage = result.lineage
        assert lineage.key == result.key
        assert lineage.emitted_at == result.emitted_at
        assert math.isclose(lineage.e2e_latency, result.latency)
        # Each leg decomposes into finite hop latencies.
        for site, parts in lineage.breakdown().items():
            assert all(math.isfinite(v) for v in parts.values()), (site, parts)
    # The per-site E2E histograms and per-hop histograms populated.
    for site in ("NEU", "WEU"):
        hist = obs.histogram("stream_e2e_latency_seconds", site=site)
        assert hist.count > 0
        assert math.isfinite(hist.percentile(99))
        for hop in HOP_NAMES:
            assert obs.histogram(
                "lineage_hop_seconds", hop=hop, site=site
            ).count > 0
