"""Tests for the metrics half of the observability layer."""

import math

import numpy as np
import pytest

from repro.obs import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_OBSERVER,
    MetricsRegistry,
    Observer,
)
from repro.obs.exporters import prometheus_text, summary_table


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
def test_counter_accumulates():
    reg = MetricsRegistry()
    c = reg.counter("requests_total")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    # Same name + labels → same handle.
    assert reg.counter("requests_total") is c


def test_labels_split_series():
    reg = MetricsRegistry()
    a = reg.counter("bytes_total", site="NEU")
    b = reg.counter("bytes_total", site="WEU")
    assert a is not b
    a.inc(10)
    assert b.value == 0
    assert len(reg) == 2


def test_gauge_tracks_envelope():
    reg = MetricsRegistry()
    g = reg.gauge("backlog")
    g.set(5.0)
    g.set(1.0)
    g.set(3.0)
    snap = g.snapshot()
    assert snap.value == 3.0
    assert snap.min == 1.0
    assert snap.max == 5.0
    assert snap.count == 3


def test_histogram_percentiles_match_numpy():
    rng = np.random.default_rng(7)
    values = rng.lognormal(0.0, 1.0, size=500)
    reg = MetricsRegistry()
    h = reg.histogram("latency")
    for v in values:
        h.observe(float(v))
    snap = h.snapshot()
    assert snap.count == 500
    assert snap.sum == pytest.approx(values.sum())
    for q, got in ((50, snap.p50), (95, snap.p95), (99, snap.p99)):
        assert got == pytest.approx(np.percentile(values, q))
    assert h.percentile(75) == pytest.approx(np.percentile(values, 75))


def test_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError):
        reg.gauge("x")


# ----------------------------------------------------------------------
# Snapshot / merge
# ----------------------------------------------------------------------
def test_snapshot_keys_render_labels():
    reg = MetricsRegistry()
    reg.counter("a_total", link="NEU->NUS").inc(4)
    reg.counter("plain").inc()
    snap = reg.snapshot()
    assert snap['a_total{link="NEU->NUS"}'].value == 4
    assert snap["plain"].value == 1


def test_registry_merge():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.counter("n").inc(1)
    b.counter("n").inc(2)
    b.counter("only_b").inc(5)
    a.gauge("g").set(1.0)
    b.gauge("g").set(9.0)
    for v in (1.0, 2.0):
        a.histogram("h").observe(v)
    for v in (3.0, 4.0):
        b.histogram("h").observe(v)

    a.merge(b)
    snap = a.snapshot()
    assert snap["n"].value == 3
    assert snap["only_b"].value == 5
    assert snap["g"].value == 9.0
    assert snap["g"].max == 9.0
    assert snap["h"].count == 4
    assert snap["h"].sum == pytest.approx(10.0)


def test_merge_kind_conflict_raises():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.counter("x")
    b.gauge("x")
    with pytest.raises(ValueError):
        a.merge(b)


# ----------------------------------------------------------------------
# Null (disabled) path
# ----------------------------------------------------------------------
def test_null_observer_hands_out_shared_singletons():
    assert not NULL_OBSERVER.enabled
    assert NULL_OBSERVER.counter("anything", lbl="x") is NULL_COUNTER
    assert NULL_OBSERVER.gauge("g") is NULL_GAUGE
    assert NULL_OBSERVER.histogram("h") is NULL_HISTOGRAM
    # All no-ops; nothing recorded anywhere.
    NULL_COUNTER.inc(5)
    NULL_GAUGE.set(3.0)
    NULL_HISTOGRAM.observe(1.0)
    assert NULL_COUNTER.value == 0.0
    assert math.isnan(NULL_HISTOGRAM.percentile(50))
    assert NULL_OBSERVER.registry.snapshot() == {}
    assert NULL_OBSERVER.export() == {"spans": 0, "series": 0, "flight": 0}


# ----------------------------------------------------------------------
# Exposition formats
# ----------------------------------------------------------------------
def test_prometheus_text_format():
    obs = Observer()
    obs.counter("events_total").inc(3)
    obs.gauge("depth", site="NEU").set(7.0)
    h = obs.histogram("lat_seconds")
    for v in range(1, 101):
        h.observe(float(v))
    text = prometheus_text(obs.registry)
    assert "# TYPE events_total counter" in text
    assert "events_total 3.0" in text
    assert "# TYPE depth gauge" in text
    assert 'depth{site="NEU"} 7.0' in text
    assert "# TYPE lat_seconds summary" in text
    assert 'lat_seconds{quantile="0.5"}' in text
    assert "lat_seconds_count 100" in text


def test_summary_table_renders():
    obs = Observer()
    obs.counter("c").inc(2)
    obs.histogram("h").observe(1.5)
    table = summary_table(obs.registry)
    assert "metric" in table and "c" in table and "h" in table
    assert summary_table(MetricsRegistry()).endswith("(no metrics recorded)")


def test_prometheus_label_values_are_escaped():
    """Backslash, double-quote, and newline per the exposition spec."""
    reg = MetricsRegistry()
    reg.counter("paths_total", path='C:\\tmp\\"x"\nnext').inc()
    text = prometheus_text(reg)
    line = next(
        li for li in text.splitlines() if li.startswith("paths_total{")
    )
    assert line == 'paths_total{path="C:\\\\tmp\\\\\\"x\\"\\nnext"} 1.0'
    # Escaping is single-pass: an already-escaped backslash is not
    # re-escaped into four on export.
    reg2 = MetricsRegistry()
    reg2.counter("x_total", v="\\").inc()
    assert 'x_total{v="\\\\"} 1.0' in prometheus_text(reg2)


def _parse_exposition(text: str) -> tuple[dict[str, str], list[str]]:
    """Reference parse of the text format: samples + TYPE headers."""
    samples: dict[str, str] = {}
    types: list[str] = []
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            types.append(line[len("# TYPE "):])
            continue
        series, _, value = line.rpartition(" ")
        samples[series] = value
    return samples, types


def test_prometheus_round_trip_with_hostile_labels():
    reg = MetricsRegistry()
    reg.counter("req_total", site="NEU", note='say "hi"\\now').inc(4)
    reg.counter("req_total", site="WEU").inc(2)
    reg.gauge("depth", q="a\nb").set(1.5)
    samples, types = _parse_exposition(prometheus_text(reg))
    # One TYPE line per family, even with multiple series.
    assert sorted(types) == ["depth gauge", "req_total counter"]
    assert samples['req_total{note="say \\"hi\\"\\\\now",site="NEU"}'] == "4.0"
    assert samples['req_total{site="WEU"}'] == "2.0"
    assert samples['depth{q="a\\nb"}'] == "1.5"
    # Hostile values never produce raw newlines inside a sample line.
    assert all("\n" not in s for s in samples)


# ----------------------------------------------------------------------
# Histogram percentile edge cases (documented sentinels)
# ----------------------------------------------------------------------
def test_percentile_out_of_range_raises():
    h = MetricsRegistry().histogram("h")
    h.observe(1.0)
    for bad in (-0.1, 100.1, 1000.0):
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            h.percentile(bad)


def test_percentile_empty_histogram_is_nan():
    h = MetricsRegistry().histogram("h")
    assert math.isnan(h.percentile(50))
    snap = h.snapshot()
    assert snap.count == 0
    assert math.isnan(snap.p50) and math.isnan(snap.p99)


def test_percentile_single_sample_returns_it_for_every_q():
    h = MetricsRegistry().histogram("h")
    h.observe(42.0)
    for q in (0.0, 50.0, 95.0, 100.0):
        assert h.percentile(q) == 42.0


def test_percentile_interpolates_between_samples():
    h = MetricsRegistry().histogram("h")
    h.observe(0.0)
    h.observe(10.0)
    assert h.percentile(50) == pytest.approx(5.0)
    assert h.percentile(0) == 0.0
    assert h.percentile(100) == 10.0
