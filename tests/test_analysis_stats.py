"""Unit tests for statistics helpers."""

import numpy as np
import pytest

from repro.analysis.stats import (
    confidence_interval95,
    mean_absolute_percentage_error,
    relative_error,
    summarize,
)


def test_summarize_basics():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s.n == 4
    assert s.mean == pytest.approx(2.5)
    assert s.minimum == 1.0 and s.maximum == 4.0
    assert s.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
    assert s.cv == pytest.approx(s.std / 2.5)
    assert "n=4" in str(s)


def test_summarize_single_value():
    s = summarize([7.0])
    assert s.std == 0.0
    assert s.ci95 == 0.0


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])


def test_ci95_formula():
    vals = list(range(100))
    expected = 1.96 * np.std(vals, ddof=1) / 10.0
    assert confidence_interval95(vals) == pytest.approx(expected)
    assert confidence_interval95([1.0]) == 0.0


def test_relative_error():
    assert relative_error(11.0, 10.0) == pytest.approx(0.1)
    assert relative_error(9.0, 10.0) == pytest.approx(0.1)
    with pytest.raises(ValueError):
        relative_error(1.0, 0.0)


def test_mape():
    assert mean_absolute_percentage_error([11, 9], [10, 10]) == pytest.approx(0.1)
    with pytest.raises(ValueError):
        mean_absolute_percentage_error([1], [1, 2])
    with pytest.raises(ValueError):
        mean_absolute_percentage_error([], [])
    with pytest.raises(ValueError):
        mean_absolute_percentage_error([1.0], [0.0])
