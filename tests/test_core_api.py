"""Tests for the public SageSession facade."""

import pytest

from repro import SageSession
from repro.simulation.units import GB, MB


@pytest.fixture(scope="module")
def session():
    return SageSession(
        deployment={"NEU": 5, "WEU": 3, "EUS": 3, "NUS": 5},
        seed=101,
        variability_sigma=0.0,
        glitches=False,
    )


def test_transfer_returns_result(session):
    r = session.transfer("NEU", "NUS", 256 * MB)
    assert r.seconds > 0
    assert r.throughput > 0
    assert r.nodes_used >= 1
    assert r.usd > 0
    assert r.schema


def test_budget_respected(session):
    budget = 0.10
    r = session.transfer("NEU", "NUS", 512 * MB, budget_usd=budget)
    # Planned within budget; realised cost tracks the plan closely.
    assert r.usd <= budget * 1.2


def test_deadline_met_when_feasible(session):
    r = session.transfer("NEU", "NUS", 256 * MB, deadline_s=120.0)
    assert r.seconds <= 120.0 * 1.25


def test_more_nodes_faster(session):
    slow = session.transfer("NEU", "NUS", 512 * MB, n_nodes=1)
    fast = session.transfer("NEU", "NUS", 512 * MB, n_nodes=8)
    assert fast.seconds < slow.seconds


def test_prediction_close_to_outcome(session):
    r = session.transfer("NEU", "NUS", 512 * MB, n_nodes=4)
    assert r.predicted_seconds is not None
    # The model is deliberately generic (one gain parameter, recalibrated
    # online as the session's earlier transfers complete), so require the
    # right ballpark rather than a tight band.
    assert 0.35 < r.seconds / r.predicted_seconds < 2.5


def test_link_map_rows(session):
    rows = session.link_map_rows()
    assert rows[0][0] == "from\\to"
    assert len(rows) == 5  # header + 4 regions


def test_estimated_throughput(session):
    assert session.estimated_throughput("NEU", "NUS") > 0


def test_costs_accumulate(session):
    before = session.costs().egress_usd
    session.transfer("NEU", "NUS", 128 * MB)
    assert session.costs().egress_usd > before


def test_close_finalizes():
    s = SageSession(
        deployment={"NEU": 2, "NUS": 2},
        seed=7,
        learning_phase=60.0,
        variability_sigma=0.0,
        glitches=False,
    )
    s.transfer("NEU", "NUS", 64 * MB)
    s.close()
    assert s.costs().vm_usd > 0  # leases billed on close
