"""Tests for the workload generators and application kernels."""

import numpy as np
import pytest

from repro.simulation.units import GB, KB, MB
from repro.workloads.abrain import ABRAIN_CONFIGS, ABrainConfig, ABrainWorkload
from repro.workloads.clickstream import clickstream_job, zipf_pages
from repro.workloads.sensors import sensor_fusion_job
from repro.workloads.synthetic import fresh_engine, size_sweep, standard_deployment


# ----------------------------------------------------------------------
# A-Brain
# ----------------------------------------------------------------------
def test_correlation_block_shape_and_range():
    rng = np.random.default_rng(1)
    g = rng.integers(0, 3, size=(100, 8)).astype(float)
    v = rng.normal(size=(100, 16))
    block = ABrainWorkload.correlation_block(g, v)
    assert block.shape == (8, 16)
    assert np.all(np.abs(block) <= 1.0 + 1e-9)


def test_correlation_block_detects_planted_signal():
    rng = np.random.default_rng(2)
    g = rng.integers(0, 3, size=(400, 4)).astype(float)
    v = rng.normal(size=(400, 4)) * 0.3
    v[:, 0] += g[:, 0]  # plant a strong SNP-0 -> voxel-0 association
    block = ABrainWorkload.correlation_block(g, v)
    assert block[0, 0] > 0.8
    assert abs(block[1, 1]) < 0.3


def test_correlation_block_validation():
    with pytest.raises(ValueError, match="subject axis"):
        ABrainWorkload.correlation_block(np.zeros((10, 2)), np.zeros((9, 2)))
    with pytest.raises(ValueError, match="3 subjects"):
        ABrainWorkload.correlation_block(np.zeros((2, 2)), np.zeros((2, 2)))


def test_correlation_block_constant_column_safe():
    g = np.zeros((10, 2))  # zero-variance genotypes
    v = np.random.default_rng(0).normal(size=(10, 2))
    block = ABrainWorkload.correlation_block(g, v)
    assert np.all(np.isfinite(block))


def test_abrain_config_totals():
    cfg = ABrainConfig("x", files_per_site=100, file_size=1 * MB,
                       map_regions=("NEU", "WEU"))
    assert cfg.total_bytes == pytest.approx(200 * MB)
    assert len(ABRAIN_CONFIGS) == 3
    assert ABRAIN_CONFIGS[2].total_bytes > 100 * GB


def test_abrain_site_specs_deterministic():
    w1 = ABrainWorkload(ABrainConfig("x", files_per_site=10), seed=5)
    w2 = ABrainWorkload(ABrainConfig("x", files_per_site=10), seed=5)
    s1 = w1.site_specs()
    s2 = w2.site_specs()
    assert [s.partial_files for s in s1] == [s.partial_files for s in s2]
    assert all(
        0.9 * 36 * KB <= f <= 1.1 * 36 * KB
        for s in s1
        for f in s.partial_files
    )


def test_abrain_synth_partial():
    w = ABrainWorkload(ABrainConfig("x"), seed=0)
    block = w.synth_partial(np.random.default_rng(3), snps=8, voxels=8)
    assert block.shape == (8, 8)
    # The planted SNP-0 signal stands out against the background.
    assert np.abs(block[0]).mean() > np.abs(block[1:]).mean()


# ----------------------------------------------------------------------
# Streaming job builders
# ----------------------------------------------------------------------
def test_sensor_fusion_job_structure():
    job = sensor_fusion_job()
    assert job.site_regions() == ["NEU", "WEU", "EUS"]
    assert job.aggregation_region == "NUS"
    assert job.aggregate.name == "mean"
    assert all(len(s.operators) == 1 for s in job.sites)  # rekey operator


def test_sensor_rekey_operator_folds_to_region():
    job = sensor_fusion_job(site_regions=["NEU"])
    op = job.sites[0].operators[0]
    from repro.streaming.events import Record

    out = op.process(Record(1.0, "grid-neu/s0001", 20.0, origin="NEU"))
    assert out[0].key == "NEU"


def test_clickstream_job_structure():
    job = clickstream_job(n_pages=10)
    assert job.aggregate.name == "count"
    assert len(zipf_pages(10)) == 10
    assert all(len(s.operators) == 1 for s in job.sites)  # bot filter
    nofilter = clickstream_job(bot_filter=False)
    assert all(len(s.operators) == 0 for s in nofilter.sites)


# ----------------------------------------------------------------------
# Synthetic scaffolding
# ----------------------------------------------------------------------
def test_standard_deployment_spec():
    spec = standard_deployment()
    assert sum(spec.values()) == 40
    assert set(spec) == {"NEU", "WEU", "NUS", "SUS", "EUS", "WUS"}
    spec["NEU"] = 0  # caller's copy, not the module constant
    assert standard_deployment()["NEU"] == 8


def test_size_sweep():
    assert len(size_sweep(small=True)) == 3
    assert size_sweep()[-1] == 8 * GB


def test_fresh_engine_is_warm_and_reproducible():
    e1 = fresh_engine(seed=3, spec={"NEU": 2, "NUS": 2}, learning_phase=120.0)
    e2 = fresh_engine(seed=3, spec={"NEU": 2, "NUS": 2}, learning_phase=120.0)
    t1 = e1.monitor.estimated_throughput("NEU", "NUS")
    t2 = e2.monitor.estimated_throughput("NEU", "NUS")
    assert t1 == t2
    assert t1 > 0
