"""Unit + property tests for window assigners and watermark edge cases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming.events import Record
from repro.streaming.operators import WindowedAggregator, builtin_aggregate
from repro.streaming.windows import SlidingWindows, TumblingWindows, Window


def test_window_validation():
    with pytest.raises(ValueError):
        Window(5.0, 5.0)  # zero-length
    with pytest.raises(ValueError):
        Window(5.0, 4.0)  # negative-length
    w = Window(0.0, 10.0)
    assert w.length == 10.0
    assert w.contains(0.0) and w.contains(9.999)
    assert not w.contains(10.0)


def test_tumbling_assignment():
    t = TumblingWindows(10.0)
    assert t.assign(0.0) == [Window(0.0, 10.0)]
    assert t.assign(9.999) == [Window(0.0, 10.0)]
    assert t.assign(10.0) == [Window(10.0, 20.0)]
    assert t.assign(25.0) == [Window(20.0, 30.0)]


def test_tumbling_validation():
    with pytest.raises(ValueError):
        TumblingWindows(0.0)


def test_sliding_assignment_counts():
    s = SlidingWindows(length=10.0, slide=5.0)
    windows = s.assign(12.0)
    assert len(windows) == 2
    assert all(w.contains(12.0) for w in windows)
    assert windows == sorted(windows)


def test_sliding_equals_tumbling_when_slide_is_length():
    s = SlidingWindows(10.0, 10.0)
    t = TumblingWindows(10.0)
    for ts in (0.0, 3.3, 9.99, 10.0, 47.2):
        assert s.assign(ts) == t.assign(ts)


def test_sliding_validation():
    with pytest.raises(ValueError):
        SlidingWindows(10.0, 0.0)
    with pytest.raises(ValueError):
        SlidingWindows(10.0, 11.0)  # gaps would lose events


@given(st.floats(min_value=0.0, max_value=1e7))
@settings(max_examples=100, deadline=None)
def test_property_tumbling_covers_every_instant(t):
    w = TumblingWindows(7.5).assign(t)
    assert len(w) == 1
    assert w[0].contains(t)


# ----------------------------------------------------------------------
# Watermark edge cases in the windowed aggregator
# ----------------------------------------------------------------------
def _rec(t, key="k", value=1.0):
    return Record(event_time=t, key=key, value=value, origin="NEU")


def _agg(lateness=0.0):
    return WindowedAggregator(
        TumblingWindows(10.0), builtin_aggregate("count"),
        allowed_lateness=lateness,
    )


def test_arrival_exactly_at_the_watermark_is_not_late():
    # Lateness is strict: an event *at* the watermark still belongs to a
    # window the watermark has not passed ([wm, wm+10) is still open).
    agg = _agg()
    agg.advance_watermark(10.0)
    agg.process(_rec(10.0))
    assert agg.late_dropped == 0
    # A hair of event time earlier is strictly behind: dropped.
    agg.process(_rec(10.0 - 1e-9))
    assert agg.late_dropped == 1
    out = agg.advance_watermark(20.0)
    assert len(out) == 1 and out[0].value.window == Window(10.0, 20.0)
    assert out[0].value.count == 1  # the late record never entered


def test_allowed_lateness_shifts_the_boundary_exactly():
    agg = _agg(lateness=2.0)
    agg.process(_rec(5.0))
    # The [0, 10) window is held open until end + lateness.
    assert agg.advance_watermark(10.0) == []
    agg.process(_rec(8.0))  # 8.0 + 2.0 == 10.0: not strictly behind
    assert agg.late_dropped == 0
    agg.process(_rec(8.0 - 1e-9))  # strictly behind watermark - lateness
    assert agg.late_dropped == 1
    out = agg.advance_watermark(12.0)  # end + lateness == watermark
    assert [r.value.window for r in out] == [Window(0.0, 10.0)]
    assert out[0].value.count == 2


def test_backlog_delayed_watermark_closes_windows_in_order():
    # A site whose watermark was held back by backlog releases several
    # windows in one jump; they must come out ordered by (window, key)
    # so downstream latency attribution stays monotone.
    agg = _agg()
    for t, key in [(25.0, "b"), (3.0, "a"), (17.0, "a"), (3.5, "b"),
                   (25.5, "a"), (17.5, "b")]:
        agg.process(_rec(t, key=key))
    assert agg.open_windows == 3
    out = agg.advance_watermark(100.0)
    assert [(r.value.window.start, r.key) for r in out] == [
        (0.0, "a"), (0.0, "b"),
        (10.0, "a"), (10.0, "b"),
        (20.0, "a"), (20.0, "b"),
    ]
    # Each partial is stamped with its window close, not the jump time.
    assert [r.event_time for r in out] == [10.0, 10.0, 20.0, 20.0, 30.0, 30.0]
    assert agg.open_windows == 0


def test_watermark_cannot_move_backwards():
    agg = _agg()
    agg.advance_watermark(30.0)
    with pytest.raises(ValueError, match="backwards"):
        agg.advance_watermark(29.0)
    agg.advance_watermark(30.0)  # staying put is fine


def test_window_closes_when_watermark_equals_end_plus_lateness():
    agg = _agg()
    agg.process(_rec(5.0))
    assert agg.advance_watermark(10.0 - 1e-9) == []
    out = agg.advance_watermark(10.0)  # close condition is <=
    assert len(out) == 1
    assert out[0].value.count == 1


@given(
    st.floats(min_value=0.0, max_value=1e6),
    st.floats(min_value=1.0, max_value=100.0),
    st.integers(min_value=1, max_value=5),
)
@settings(max_examples=100, deadline=None)
def test_property_sliding_every_window_contains_event(t, slide, factor):
    length = slide * factor
    windows = SlidingWindows(length, slide).assign(t)
    assert windows
    assert all(w.contains(t) for w in windows)
    # An event belongs to ceil(length/slide) windows (boundary cases ±1).
    assert abs(len(windows) - factor) <= 1
    # Windows are aligned to the slide grid and distinct.
    assert len({w.start for w in windows}) == len(windows)
