"""Unit + property tests for window assigners."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming.windows import SlidingWindows, TumblingWindows, Window


def test_window_validation():
    with pytest.raises(ValueError):
        Window(5.0, 5.0)
    w = Window(0.0, 10.0)
    assert w.length == 10.0
    assert w.contains(0.0) and w.contains(9.999)
    assert not w.contains(10.0)


def test_tumbling_assignment():
    t = TumblingWindows(10.0)
    assert t.assign(0.0) == [Window(0.0, 10.0)]
    assert t.assign(9.999) == [Window(0.0, 10.0)]
    assert t.assign(10.0) == [Window(10.0, 20.0)]
    assert t.assign(25.0) == [Window(20.0, 30.0)]


def test_tumbling_validation():
    with pytest.raises(ValueError):
        TumblingWindows(0.0)


def test_sliding_assignment_counts():
    s = SlidingWindows(length=10.0, slide=5.0)
    windows = s.assign(12.0)
    assert len(windows) == 2
    assert all(w.contains(12.0) for w in windows)
    assert windows == sorted(windows)


def test_sliding_equals_tumbling_when_slide_is_length():
    s = SlidingWindows(10.0, 10.0)
    t = TumblingWindows(10.0)
    for ts in (0.0, 3.3, 9.99, 10.0, 47.2):
        assert s.assign(ts) == t.assign(ts)


def test_sliding_validation():
    with pytest.raises(ValueError):
        SlidingWindows(10.0, 0.0)
    with pytest.raises(ValueError):
        SlidingWindows(10.0, 11.0)  # gaps would lose events


@given(st.floats(min_value=0.0, max_value=1e7))
@settings(max_examples=100, deadline=None)
def test_property_tumbling_covers_every_instant(t):
    w = TumblingWindows(7.5).assign(t)
    assert len(w) == 1
    assert w[0].contains(t)


@given(
    st.floats(min_value=0.0, max_value=1e6),
    st.floats(min_value=1.0, max_value=100.0),
    st.integers(min_value=1, max_value=5),
)
@settings(max_examples=100, deadline=None)
def test_property_sliding_every_window_contains_event(t, slide, factor):
    length = slide * factor
    windows = SlidingWindows(length, slide).assign(t)
    assert windows
    assert all(w.contains(t) for w in windows)
    # An event belongs to ceil(length/slide) windows (boundary cases ±1).
    assert abs(len(windows) - factor) <= 1
    # Windows are aligned to the slide grid and distinct.
    assert len({w.start for w in windows}) == len(windows)
