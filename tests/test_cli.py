"""Tests for the command-line interface."""

import argparse

import pytest

from repro.cli import build_parser, main, parse_size, parse_spec
from repro.simulation.units import GB, KB, MB


# ----------------------------------------------------------------------
# Parsing helpers
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "text,expected",
    [
        ("1024", 1024.0),
        ("500MB", 500 * MB),
        ("2.5GB", 2.5 * GB),
        ("16kb", 16 * KB),
        (" 1 GB ", GB),
    ],
)
def test_parse_size(text, expected):
    assert parse_size(text) == expected


@pytest.mark.parametrize("bad", ["", "GB", "12XB", "two GB"])
def test_parse_size_rejects(bad):
    with pytest.raises(argparse.ArgumentTypeError):
        parse_size(bad)


def test_parse_spec():
    assert parse_spec("NEU:5,nus:3") == {"NEU": 5, "NUS": 3}
    assert sum(parse_spec(None).values()) == 40  # standard deployment
    with pytest.raises(argparse.ArgumentTypeError):
        parse_spec("NEU=5")


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


# ----------------------------------------------------------------------
# Commands (small deployments, short learning, to stay fast)
# ----------------------------------------------------------------------
FAST = ["--seed", "5", "--deploy", "NEU:3,NUS:3,WEU:2", "--learning", "120"]


def test_cmd_map(capsys):
    assert main(FAST + ["map"]) == 0
    out = capsys.readouterr().out
    assert "throughput map" in out
    assert "NEU" in out and "NUS" in out


def test_cmd_transfer(capsys):
    assert main(FAST + ["transfer", "NEU", "NUS", "200MB", "--nodes", "3"]) == 0
    out = capsys.readouterr().out
    assert "transferred 200.00 MB" in out
    assert "schema:" in out


def test_cmd_transfer_with_budget(capsys):
    assert main(FAST + ["transfer", "NEU", "NUS", "200MB", "--budget", "0.1"]) == 0
    assert "egress $" in capsys.readouterr().out


def test_cmd_plan(capsys):
    assert main(FAST + ["plan", "NEU", "NUS", "1GB", "--max-nodes", "6"]) == 0
    out = capsys.readouterr().out
    assert "knee" in out
    assert "pareto" in out


def test_cmd_disseminate(capsys):
    assert main(FAST + ["disseminate", "NEU", "NUS,WEU", "100MB"]) == 0
    out = capsys.readouterr().out
    assert "tree:" in out
    assert "makespan" in out


def test_cmd_introspect(capsys):
    assert main(FAST + ["introspect", "--hours", "0.5"]) == 0
    assert "Introspection-as-a-Service" in capsys.readouterr().out


def test_cmd_stream(capsys):
    assert main(FAST + ["stream", "--workload", "sensors", "--duration", "60"]) == 0
    out = capsys.readouterr().out
    assert "ingested" in out
    assert "latency p50" in out


def test_cmd_chaos_renders_scenario_report(capsys):
    assert main(["--seed", "5", "chaos", "--duration", "60"]) == 0
    out = capsys.readouterr().out
    assert "scenario chaos: seed=5" in out
    assert "verdict" in out


def test_cmd_overload_renders_scenario_report(capsys):
    assert (
        main(["--seed", "5", "overload", "--duration", "60", "--no-crash"])
        == 0
    )
    out = capsys.readouterr().out
    assert "scenario overload: seed=5" in out
    assert "verdict" in out


def test_cmd_sweep_warm_cache_and_digest(tmp_path, capsys):
    args = [
        "sweep", "--jobs", "2", "--duration", "60",
        "--cache-dir", str(tmp_path / "cache"), "--digest",
        "--jsonl", str(tmp_path / "sweep.jsonl"),
    ]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert "5 simulated" in cold
    assert (tmp_path / "sweep.jsonl").exists()

    assert main(args) == 0
    warm = capsys.readouterr().out
    assert "5 hits / 0 misses (100% hit ratio), 0 simulated" in warm
    # The bare digest on the last line is the CI comparison anchor.
    assert cold.strip().splitlines()[-1] == warm.strip().splitlines()[-1]


# ----------------------------------------------------------------------
# Observability flags
# ----------------------------------------------------------------------
def test_cmd_transfer_trace_writes_valid_jsonl(tmp_path, capsys):
    import json

    trace = tmp_path / "transfer.jsonl"
    assert (
        main(
            FAST
            + ["--trace", str(trace), "transfer", "NEU", "NUS", "100MB",
               "--nodes", "2"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert f"-> {trace}" in out
    lines = trace.read_text().strip().splitlines()
    assert lines
    spans = [json.loads(line) for line in lines]
    for span in spans:
        assert {"span_id", "parent_id", "name", "start", "end", "attrs"} <= (
            span.keys()
        )
        assert span["end"] >= span["start"]
    assert any(s["name"] == "transfer.managed" for s in spans)


def test_cmd_stream_trace_and_metrics(tmp_path, capsys):
    trace = tmp_path / "stream.jsonl"
    prom = tmp_path / "stream.prom"
    assert (
        main(
            FAST
            + ["--trace", str(trace), "--metrics", str(prom),
               "stream", "--workload", "sensors", "--duration", "60"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "trace:" in out and "metrics:" in out
    text = prom.read_text()
    assert "# TYPE sim_events_total counter" in text
    assert "stream_window_latency_seconds" in text
    assert trace.read_text().strip()


def test_cmd_introspect_with_metrics_folds_registry(tmp_path, capsys):
    prom = tmp_path / "i.prom"
    assert (
        main(FAST + ["--metrics", str(prom), "introspect", "--hours", "0.5"])
        == 0
    )
    out = capsys.readouterr().out
    assert "Introspection-as-a-Service" in out
    assert "Run metrics" in out
    assert "monitor_samples_total" in prom.read_text()


def test_cmd_sweep_table_has_per_shard_wall_and_cache_columns(
    tmp_path, capsys
):
    args = [
        "sweep", "--duration", "60", "--cache-dir", str(tmp_path / "cache"),
    ]
    assert main(args) == 0
    cold = capsys.readouterr().out
    for column in ("shard", "cached", "wall (s)", "speedup", "status"):
        assert column in cold
    cold_rows = [li for li in cold.splitlines() if "chaos-inject" in li]
    assert len(cold_rows) == 1
    cells = [c.strip() for c in cold_rows[0].split("|")]
    # shard | scenario | seed | cached | wall (s) | speedup | status
    assert cells[1] == "chaos"
    assert cells[3] == "no"  # cold run: simulated, not served from cache
    assert float(cells[4]) > 0.0  # per-shard wall time is real
    assert cells[5].endswith("x")  # sim speedup from the shard's perf
    assert cells[6] == "ok"

    assert main(args) == 0
    warm = capsys.readouterr().out
    warm_rows = [li for li in warm.splitlines() if "chaos-inject" in li]
    cells = [c.strip() for c in warm_rows[0].split("|")]
    assert cells[3] == "yes"  # served from the cache this time


# ----------------------------------------------------------------------
# Profiling / flight recorder
# ----------------------------------------------------------------------
def test_cmd_perf_renders_dashboard_and_writes_bench(tmp_path, capsys):
    import json

    assert (
        main(
            FAST
            + ["perf", "stream", "--duration", "60",
               "--bench-dir", str(tmp_path)]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Hot stages (exclusive wall time)" in out
    assert "sim.dispatch" in out
    assert "Throughput" in out
    assert "attribution coverage" in out
    bench = json.loads((tmp_path / "BENCH_perf_stream.json").read_text())
    assert bench["records_per_s"] > 0
    assert sum(bench["stage_shares"].values()) == pytest.approx(
        1.0, abs=1e-3
    )


def test_cmd_dashboard_once_prints_single_frame(capsys):
    assert (
        main(FAST + ["dashboard", "--duration", "60", "--once"]) == 0
    )
    out = capsys.readouterr().out
    assert out.count("SAGE dashboard") == 1
    assert "Hot stages" in out


def test_cmd_chaos_flight_record_dumps_recent_events(tmp_path, capsys):
    from repro.obs import read_flight_jsonl

    flight = tmp_path / "chaos.jsonl"
    assert (
        main(["--seed", "5", "--flight-record", str(flight), "chaos"]) == 0
    )
    out = capsys.readouterr().out
    assert f"-> {flight}" in out
    entries = read_flight_jsonl(str(flight))
    # The acceptance bar: a chaos run's dump replays >= 1000 events.
    assert len(entries) >= 1000
    kinds = {e["kind"] for e in entries}
    assert "event" in kinds and "fault" in kinds
    for e in entries:
        assert "t" in e and "kind" in e
    # Entries arrive in virtual-time order (the ring preserves occurrence
    # order and the clock is monotone).
    times = [e["t"] for e in entries]
    assert times == sorted(times)


def test_failing_command_auto_dumps_flight_ring(tmp_path, capsys, monkeypatch):
    from repro import cli
    from repro.obs import read_flight_jsonl

    def failing_chaos(args):
        obs = cli._force_observer(args)
        for i in range(5):
            obs.recorder.record("event", seq=i)
        return 1

    monkeypatch.setitem(cli._COMMANDS, "chaos", failing_chaos)
    monkeypatch.chdir(tmp_path)
    assert main(["--seed", "5", "chaos"]) == 1
    err = capsys.readouterr().err
    assert "dumped last 5 events" in err
    entries = read_flight_jsonl(str(tmp_path / "flight-chaos.jsonl"))
    assert [e["seq"] for e in entries] == list(range(5))

def test_exception_in_command_still_dumps_flight_ring(
    tmp_path, capsys, monkeypatch
):
    from repro import cli
    from repro.obs import read_flight_jsonl

    def crashing_chaos(args):
        obs = cli._force_observer(args)
        obs.recorder.record("event", seq=0)
        raise RuntimeError("boom mid-scenario")

    monkeypatch.setitem(cli._COMMANDS, "chaos", crashing_chaos)
    monkeypatch.chdir(tmp_path)
    with pytest.raises(RuntimeError, match="boom"):
        main(["--seed", "5", "chaos"])
    err = capsys.readouterr().err
    assert "dumped last 1 events" in err
    entries = read_flight_jsonl(str(tmp_path / "flight-chaos.jsonl"))
    assert entries[0]["seq"] == 0


def test_cmd_audit_green_writes_empty_violations_jsonl(tmp_path, capsys):
    jsonl = tmp_path / "violations.jsonl"
    assert (
        main(
            ["--seed", "5", "audit", "--scenario", "chaos",
             "--duration", "120", "--jsonl", str(jsonl)]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "chaos:" in out and "0 violations" in out and "clean" in out
    assert f"violations: 0 -> {jsonl}" in out
    # Empty file on green: the CI artifact exists either way.
    assert jsonl.exists() and jsonl.read_text() == ""


def test_cmd_audit_flags_injected_slo_breach(tmp_path, capsys):
    import json

    jsonl = tmp_path / "violations.jsonl"
    rc = main(
        ["--seed", "5", "audit", "--scenario", "chaos", "--duration", "120",
         "--max-latency", "0.001", "--jsonl", str(jsonl)]
    )
    assert rc == 1
    out = capsys.readouterr().out
    assert "VIOLATED" in out
    rows = [
        json.loads(line) for line in jsonl.read_text().splitlines()
    ]
    assert rows
    assert all(r["scenario"] == "chaos" for r in rows)
    assert {r["kind"] for r in rows} == {"latency_slo"}


def test_cmd_audit_runs_both_scenarios(capsys):
    assert main(["--seed", "5", "audit", "--duration", "120"]) == 0
    out = capsys.readouterr().out
    # One summary line per audited scenario.
    assert "chaos" in out and "overload" in out


# ----------------------------------------------------------------------
# sage soak
# ----------------------------------------------------------------------
def test_cmd_soak_green_writes_all_artifacts(tmp_path, capsys):
    import json

    jsonl = tmp_path / "soak-violations.jsonl"
    report_json = tmp_path / "soak-report.json"
    rc = main(
        ["--seed", "11", "soak", "--hours", "0.1", "--profile", "calm",
         "--jsonl", str(jsonl), "--report-json", str(report_json),
         "--digest"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "soak run: profile=calm seed=11" in out
    assert "CLEAN" in out
    assert f"violations: 0 -> {jsonl}" in out
    # Empty file on green: the CI artifact exists either way.
    assert jsonl.exists() and jsonl.read_text() == ""
    payload = json.loads(report_json.read_text())
    assert payload["scenario"] == "soak"
    assert payload["result"]["slo_violations"] == 0
    # The bare digest on the last line is the CI comparison anchor.
    digest = out.strip().splitlines()[-1]
    assert len(digest) == 64 and int(digest, 16) >= 0


def test_cmd_soak_breach_fails_and_logs(tmp_path, capsys):
    import json

    jsonl = tmp_path / "soak-violations.jsonl"
    rc = main(
        ["--seed", "11", "soak", "--hours", "0.1", "--profile", "calm",
         "--max-latency", "0.001", "--jsonl", str(jsonl)]
    )
    assert rc == 1
    assert "VIOLATED" in capsys.readouterr().out
    rows = [json.loads(line) for line in jsonl.read_text().splitlines()]
    assert rows
    assert all(r["scenario"] == "soak" for r in rows)
    assert {r["kind"] for r in rows} == {"latency_slo"}
    # The same breach without strict gating reports but passes.
    assert main(
        ["--seed", "11", "soak", "--hours", "0.1", "--profile", "calm",
         "--max-latency", "0.001", "--no-strict"]
    ) == 0


def test_cmd_sweep_generated_shards(tmp_path, capsys):
    args = [
        "sweep", "--jobs", "2", "--duration", "60", "--generated", "2",
        "--cache-dir", str(tmp_path / "cache"), "--digest",
    ]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert "soak-gen-000" in cold and "soak-gen-001" in cold
    assert "7 simulated" in cold
    # Warm re-run: generated shards cache like any other shard.
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert "7 hits / 0 misses (100% hit ratio), 0 simulated" in warm
    assert cold.strip().splitlines()[-1] == warm.strip().splitlines()[-1]
