"""Unit tests for the cost model."""

import pytest

from repro.cloud.pricing import PriceBook
from repro.cloud.vm import VM_SIZES
from repro.core.cost import CostModel
from repro.simulation.units import GB, HOUR


@pytest.fixture
def model():
    return CostModel(PriceBook())


def test_egress_dominates_for_few_nodes(model):
    cb = model.estimate(1 * GB, 60.0, 1)
    assert cb.egress_usd == pytest.approx(0.12)
    assert cb.egress_usd > cb.vm_cpu_usd + cb.vm_bandwidth_usd


def test_vm_time_term_scales_with_nodes_and_time(model):
    base = model.estimate(1 * GB, 100.0, 1)
    more_nodes = model.estimate(1 * GB, 100.0, 4)
    vm_base = base.vm_cpu_usd + base.vm_bandwidth_usd
    vm_more = more_nodes.vm_cpu_usd + more_nodes.vm_bandwidth_usd
    assert vm_more == pytest.approx(4 * vm_base)
    longer = model.estimate(1 * GB, 200.0, 1)
    assert longer.vm_cpu_usd == pytest.approx(2 * base.vm_cpu_usd)


def test_intrusiveness_scales_vm_cost(model):
    full = model.estimate(1 * GB, 100.0, 2, intrusiveness=1.0)
    tenth = model.estimate(1 * GB, 100.0, 2, intrusiveness=0.1)
    assert tenth.vm_cpu_usd == pytest.approx(0.1 * full.vm_cpu_usd)
    assert tenth.egress_usd == full.egress_usd  # egress is unaffected


def test_relay_paths_multiply_egress(model):
    one = model.estimate(1 * GB, 60.0, 1, wan_hops=1)
    two = model.estimate(1 * GB, 60.0, 1, wan_hops=2)
    assert two.egress_usd == pytest.approx(2 * one.egress_usd)


def test_exact_vm_hour(model):
    cb = model.estimate(1 * GB, HOUR, 1, intrusiveness=1.0)
    assert cb.vm_cpu_usd + cb.vm_bandwidth_usd == pytest.approx(
        VM_SIZES["Small"].usd_per_hour
    )


def test_breakdown_total_and_str(model):
    cb = model.estimate(1 * GB, 60.0, 3)
    assert cb.total_usd == pytest.approx(
        cb.vm_cpu_usd + cb.vm_bandwidth_usd + cb.egress_usd
    )
    s = str(cb)
    assert "egress" in s and "n=3" in s


def test_vm_usd_per_second(model):
    assert model.vm_usd_per_second(1.0) == pytest.approx(0.06 / HOUR)
    assert model.vm_usd_per_second(0.5) == pytest.approx(0.03 / HOUR)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(size=0.0, predicted_time=1.0, n_nodes=1),
        dict(size=1.0, predicted_time=0.0, n_nodes=1),
        dict(size=1.0, predicted_time=1.0, n_nodes=0),
        dict(size=1.0, predicted_time=1.0, n_nodes=1, intrusiveness=0.0),
        dict(size=1.0, predicted_time=1.0, n_nodes=1, wan_hops=0),
    ],
)
def test_validation(model, kwargs):
    with pytest.raises(ValueError):
        model.estimate(**kwargs)
