"""Equivalence of the incremental fluid allocator with the reference one.

``FluidNetwork`` ships two allocators: ``"fast"`` (the default — interned
resource entries, incrementally maintained incidence, early-out when no
input changed, scalar/vector water-fill hybrid) and ``"reference"`` (the
original full-recompute dict-based water-fill, kept as the oracle). The
fast allocator is required to be *bit-identical*, not merely close:
every optimisation preserves the reference's floating-point expression
trees and its deterministic flow ordering, so randomized churn under
weather variability, glitches, UDP/TCP mixes and relays must end in
exactly the same per-flow state.
"""

from __future__ import annotations

import random

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.cloud.network import Flow
from repro.simulation.units import MB


def churn(allocator, seed, events=120, vector_threshold=None):
    """Random start/cancel churn; returns each flow's final state."""
    env = CloudEnvironment(seed=seed, variability_sigma=0.15, glitches=True)
    net = env.network
    net.allocator = allocator
    if vector_threshold is not None:
        net.vector_threshold = vector_threshold
    vms = []
    for region in env.topology.region_codes()[:4]:
        vms.extend(env.provision(region, "Small", count=3))
    rng = random.Random(seed)
    all_flows = []
    t = 0.0
    for _ in range(events):
        t += rng.expovariate(1.0)
        net.sim.run_until(t)
        if rng.random() < 0.7 or not all_flows:
            path = rng.sample(vms, rng.randint(2, 4))
            f = net.start_flow(
                Flow(
                    path,
                    size=rng.uniform(5, 80) * MB,
                    streams=rng.randint(1, 8),
                    intrusiveness=rng.choice([0.5, 1.0]),
                    transport=rng.choice(["tcp", "tcp", "udp"]),
                )
            )
            all_flows.append(f)
        else:
            f = rng.choice(all_flows)
            if f in net.flows:
                net.cancel_flow(f)
    net.sim.run_until(t + 500.0)
    return [(f.transferred, f.completed_at, f.cancelled) for f in all_flows]


@pytest.mark.parametrize("seed", [7, 21, 99])
def test_fast_allocator_bit_identical_to_reference(seed):
    ref = churn("reference", seed)
    fast = churn("fast", seed)
    assert fast == ref
    done = sum(1 for _, completed_at, _ in ref if completed_at is not None)
    assert done > 0, "churn never completed a flow; test is vacuous"


def test_vector_water_fill_bit_identical_to_reference():
    # Force the numpy path for any contention (threshold 2) so the
    # incidence-matrix water-fill is exercised, not just the scalar one.
    ref = churn("reference", 7)
    vect = churn("fast", 7, vector_threshold=2)
    assert vect == ref


def test_unknown_allocator_rejected():
    env = CloudEnvironment(seed=1)
    with pytest.raises(ValueError, match="unknown allocator"):
        type(env.network)(env.sim, env.topology, allocator="bogus")


def test_steady_state_reallocation_early_out():
    # In a frozen environment (no weather, no glitches) periodic refresh
    # ticks change nothing: the fast allocator must skip the water-fill.
    env = CloudEnvironment(
        seed=3, variability_sigma=0.0, diurnal_amplitude=0.0, glitches=False
    )
    net = env.network
    a = env.provision("NEU", "Small", count=2)
    b = env.provision("NUS", "Small", count=2)
    big = 1e12  # never completes within the observation window
    net.start_flow(Flow([a[0], b[0]], size=big, streams=4))
    net.start_flow(Flow([a[1], b[1]], size=big, streams=4))
    skips_before = net.alloc_skips
    env.sim.run_until(env.sim.now + 200.0)
    assert net.alloc_skips > skips_before
    assert all(f.rate > 0 for f in net.flows)
