"""At-least-once shipping and receiver-side duplicate removal."""

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.core.engine import SageEngine
from repro.simulation.units import KB
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.events import Batch, Record
from repro.streaming.hierarchy import HubAggregator
from repro.streaming.operators import PartialAggregate, builtin_aggregate
from repro.streaming.runtime import GlobalAggregator
from repro.streaming.shipping import ReliableShipping
from repro.streaming.sources import PoissonSource
from repro.streaming.windows import TumblingWindows, Window


@pytest.fixture
def engine():
    env = CloudEnvironment(seed=71, variability_sigma=0.0, glitches=False)
    eng = SageEngine(env, deployment_spec={"NEU": 2, "NUS": 2})
    eng.start(learning_phase=30.0)
    return eng


@pytest.fixture
def job():
    return StreamJob(
        name="r",
        sites=[SiteSpec("NEU", [PoissonSource("s", rate=1.0)])],
        aggregation_region="NUS",
        windows=TumblingWindows(10.0),
        aggregate=builtin_aggregate("count"),
        finalize_grace=5.0,
    )


def partial_batch(seq, count=3, origin="NEU"):
    pa = PartialAggregate(Window(0.0, 10.0), "k", state=count, count=count)
    record = Record(10.0, "k", pa, origin=origin, size_bytes=200.0)
    return Batch([record], origin, created_at=10.0, seq=seq)


def plain_batch(seq=1, size=64 * KB):
    record = Record(0.0, "k", 1.0, origin="NEU", size_bytes=size)
    return Batch([record], "NEU", created_at=0.0, seq=seq)


# ----------------------------------------------------------------------
# Receiver-side dedup
# ----------------------------------------------------------------------
def test_duplicate_batch_not_double_counted(engine, job):
    """Satellite contract: the same partial-aggregate batch delivered twice
    leaves window values and record counts unchanged."""
    agg = GlobalAggregator(engine, job)
    agg.deliver(partial_batch(seq=4))
    agg.deliver(partial_batch(seq=4))  # verbatim re-delivery
    engine.run_until(engine.sim.now + job.finalize_grace + 1.0)
    assert agg.duplicates_dropped == 1
    assert len(agg.results) == 1
    result = agg.results[0]
    assert result.value == 3
    assert result.record_count == 3


def test_distinct_batches_do_merge(engine, job):
    agg = GlobalAggregator(engine, job)
    agg.deliver(partial_batch(seq=1))
    agg.deliver(partial_batch(seq=2))  # a different batch, same window
    engine.run_until(engine.sim.now + job.finalize_grace + 1.0)
    assert agg.duplicates_dropped == 0
    assert len(agg.results) == 1
    assert agg.results[0].value == 6
    assert agg.results[0].record_count == 6


def test_hub_aggregator_drops_duplicates(engine, job):
    class _Sink:
        bytes_shipped = 0.0

        def ship(self, batch, on_delivered):
            pass

    hub = HubAggregator(engine, job, "NEU", _Sink(), hold=1.0)
    hub.deliver(partial_batch(seq=9))
    hub.deliver(partial_batch(seq=9))
    assert hub.duplicates_dropped == 1
    assert hub.partials_in == 1
    hub.stop()


# ----------------------------------------------------------------------
# ReliableShipping
# ----------------------------------------------------------------------
class FlakyInner:
    """Inner backend stub: swallows the first ``fail_first`` attempts,
    then delivers each attempt after ``delay`` seconds."""

    def __init__(self, engine, fail_first=0, delay=1.0):
        self.engine = engine
        self.fail_first = fail_first
        self.delay = delay
        self.attempts = 0
        self.bytes_shipped = 0.0
        self.batches_shipped = 0

    def ship(self, batch, on_delivered):
        self.attempts += 1
        self.bytes_shipped += batch.size_bytes
        self.batches_shipped += 1
        if self.attempts > self.fail_first:
            self.engine.sim.schedule(self.delay, on_delivered, batch)


def test_reliable_validation(engine):
    inner = FlakyInner(engine)
    with pytest.raises(ValueError, match="delivery_timeout"):
        ReliableShipping(engine, inner, delivery_timeout=0.0)
    with pytest.raises(ValueError, match="max_retries"):
        ReliableShipping(engine, inner, max_retries=-1)


def test_reliable_retries_until_delivered(engine):
    inner = FlakyInner(engine, fail_first=2)
    shipping = ReliableShipping(engine, inner, delivery_timeout=5.0,
                                max_retries=4)
    got = []
    shipping.ship(plain_batch(), got.append)
    engine.run_until(engine.sim.now + 120.0)
    assert len(got) == 1
    assert shipping.retries == 2
    assert shipping.acked == 1
    assert shipping.abandoned == 0
    assert inner.attempts == 3
    # Retries pay wide-area bytes like any other batch.
    assert shipping.bytes_shipped == inner.bytes_shipped
    assert shipping.bytes_shipped == pytest.approx(3 * 64 * KB)


def test_reliable_abandons_after_bounded_retries(engine):
    inner = FlakyInner(engine, fail_first=10**9)  # black hole
    shipping = ReliableShipping(engine, inner, delivery_timeout=2.0,
                                max_retries=2)
    got = []
    shipping.ship(plain_batch(), got.append)
    engine.run_until(engine.sim.now + 300.0)
    assert got == []
    assert shipping.abandoned == 1
    assert shipping.retries == 2
    assert inner.attempts == 3  # initial + bounded re-sends, then gave up


def test_late_first_copy_becomes_duplicate_and_is_deduped(engine, job):
    """A copy that outlives its timeout still reaches the receiver after
    the retry: downstream sees it twice, the aggregator counts it once."""
    agg = GlobalAggregator(engine, job)
    inner = FlakyInner(engine, delay=8.0)  # slower than the timeout
    shipping = ReliableShipping(engine, inner, delivery_timeout=5.0,
                                max_retries=3)
    shipping.ship(partial_batch(seq=6), agg.deliver)
    engine.run_until(engine.sim.now + 120.0)
    assert shipping.retries == 1
    assert shipping.acked == 1
    assert shipping.duplicates_delivered == 1
    assert agg.duplicates_dropped == 1
    assert len(agg.results) == 1
    assert agg.results[0].record_count == 3  # counted exactly once
