"""Tests for hierarchical (site → hub → global) aggregation."""

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.core.engine import SageEngine
from repro.simulation.units import MB
from repro.streaming import (
    GeoStreamRuntime,
    PoissonSource,
    SageShipping,
    SiteSpec,
    StreamJob,
    TumblingWindows,
    builtin_aggregate,
)
from repro.streaming.hierarchy import HierarchicalRuntime, HubAggregator

EU_SITES = ["NEU", "WEU", "EUS"]  # EUS stands in as a third edge site


def make_engine(seed=601):
    env = CloudEnvironment(seed=seed, variability_sigma=0.0, glitches=False)
    engine = SageEngine(
        env,
        deployment_spec={"NEU": 3, "WEU": 3, "EUS": 3, "NUS": 3, "WUS": 3},
    )
    engine.start(learning_phase=120.0)
    return engine


def make_job(rate=300.0, key_per_site=True):
    return StreamJob(
        name="h",
        sites=[
            SiteSpec(
                r,
                [PoissonSource(f"s-{r}", rate=rate,
                               keys=[r] if key_per_site else ["shared"])],
            )
            for r in EU_SITES
        ],
        aggregation_region="WUS",
        windows=TumblingWindows(10.0),
        aggregate=builtin_aggregate("count"),
    )


HUBS = {"NEU": "WEU", "WEU": "WEU", "EUS": "WEU"}


def run_hier(engine, job, duration=100.0, **kwargs):
    runtime = HierarchicalRuntime(
        engine,
        job,
        hubs=HUBS,
        site_shipping_factory=SageShipping.factory(n_nodes=1),
        hub_shipping_factory=SageShipping.factory(n_nodes=2),
        **kwargs,
    )
    runtime.run_for(duration)
    return runtime


def test_hierarchical_counts_are_complete():
    engine = make_engine()
    runtime = run_hier(engine, make_job())
    counted = sum(r.value for r in runtime.results)
    ingested = runtime.records_ingested()
    assert counted > 0.7 * ingested
    assert counted <= ingested
    # Nothing emitted twice.
    slots = {(r.window, r.key) for r in runtime.results}
    assert len(slots) == len(runtime.results)


def test_hub_merges_shared_keys_before_the_backbone():
    """Three sites, one shared key: the hub forwards ONE merged partial
    per window instead of three."""
    engine = make_engine(seed=602)
    runtime = run_hier(engine, make_job(key_per_site=False), hub_hold=3.0)
    hub = runtime.hub_aggregators["WEU"]
    assert hub.partials_in > hub.partials_out
    assert hub.reduction_ratio > 0.5
    # Global results carry contributions from all three sites.
    full = [r for r in runtime.results if r.record_count > 0]
    assert full
    total = sum(r.value for r in full)
    assert total > 0.7 * runtime.records_ingested()


def test_hierarchy_cuts_backbone_volume_vs_flat():
    engine_flat = make_engine(seed=603)
    flat = GeoStreamRuntime(
        engine_flat, make_job(key_per_site=False),
        SageShipping.factory(n_nodes=1),
    )
    flat.run_for(100.0)
    engine_h = make_engine(seed=603)
    hier = run_hier(engine_h, make_job(key_per_site=False), hub_hold=3.0)
    # Flat: every site crosses the backbone; hierarchical: only the hub.
    assert hier.backbone_bytes() < 0.6 * flat.wan_bytes()
    # Comparable completeness.
    flat_total = sum(r.value for r in flat.results)
    hier_total = sum(r.value for r in hier.results)
    assert hier_total == pytest.approx(flat_total, rel=0.25)


def test_hierarchical_latency_pays_one_hold_stage():
    engine_flat = make_engine(seed=604)
    flat = GeoStreamRuntime(
        engine_flat, make_job(), SageShipping.factory(n_nodes=1)
    )
    flat.run_for(100.0)
    engine_h = make_engine(seed=604)
    hier = run_hier(engine_h, make_job(), hub_hold=2.0)
    extra = hier.latency_stats().p50 - flat.latency_stats().p50
    assert 0.0 <= extra < 10.0  # bounded by hold + one extra shipping leg


def test_hierarchy_validation():
    engine = make_engine(seed=605)
    job = make_job()
    with pytest.raises(ValueError, match="without a hub"):
        HierarchicalRuntime(
            engine, job, hubs={"NEU": "WEU"},
            site_shipping_factory=SageShipping.factory(),
            hub_shipping_factory=SageShipping.factory(),
        )
    raw = make_job()
    raw.ship_raw_records = True
    with pytest.raises(ValueError, match="partials"):
        HierarchicalRuntime(
            engine, raw, hubs=HUBS,
            site_shipping_factory=SageShipping.factory(),
            hub_shipping_factory=SageShipping.factory(),
        )
    with pytest.raises(ValueError):
        HubAggregator(engine, job, "WEU", None, hold=-1.0)
