"""Checkpoint restore across schema versions and under active faults.

The aggregator's pending-window rows grew an 8th element (lineage legs)
after the 7-element schema shipped; ``restore`` must accept both. A
restore must also survive landing *inside* an open batch-drop fault
window — the replayed batches get dropped and re-retried, and the loss
identity still balances.
"""

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.core.engine import SageEngine
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.flow.checkpoint import CheckpointStore
from repro.flow.policy import FlowConfig
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.operators import builtin_aggregate
from repro.streaming.runtime import GeoStreamRuntime, GlobalAggregator
from repro.streaming.shipping import ReliableShipping, SageShipping
from repro.streaming.sources import PoissonSource
from repro.streaming.windows import TumblingWindows


def _build(finalize_grace=60.0, reliable=False):
    env = CloudEnvironment(seed=9, variability_sigma=0.0, glitches=False)
    engine = SageEngine(
        env, deployment_spec={"NEU": 2, "WEU": 2, "NUS": 2}
    )
    engine.start(learning_phase=30.0)
    flow = FlowConfig(policy="block", max_backlog=10_000)
    job = StreamJob(
        name="ckpt",
        sites=[
            SiteSpec(
                region,
                [
                    PoissonSource(
                        f"src-{region}", rate=40.0, keys=["k1", "k2"]
                    )
                ],
            )
            for region in ("NEU", "WEU")
        ],
        aggregation_region="NUS",
        windows=TumblingWindows(10.0),
        aggregate=builtin_aggregate("count"),
        finalize_grace=finalize_grace,
        flow=flow,
    )
    factory = SageShipping.factory(n_nodes=2)
    if reliable:
        factory = ReliableShipping.factory(
            factory, delivery_timeout=8.0, max_retries=8
        )
    runtime = GeoStreamRuntime(engine, job, factory, flow=flow)
    return engine, runtime


def _checkpoint_with_pending(engine, runtime):
    """Run until partials are parked at the aggregator, then snapshot."""
    t0 = engine.sim.now
    runtime.start()
    engine.run_until(t0 + 45.0)
    payload = runtime.aggregator.checkpoint()
    assert payload["pending"], "run too short to park pending windows"
    # JSON roundtrip through the durable store: tuples become lists,
    # exactly what a restore after a real crash would see.
    store = CheckpointStore()
    store.save("aggregator", payload, engine.sim.now)
    return store.load("aggregator")


def test_current_schema_roundtrips_with_lineage_legs():
    engine, runtime = _build()
    loaded = _checkpoint_with_pending(engine, runtime)
    rows = loaded["pending"]
    assert all(len(row) == 8 for row in rows)
    restored = GlobalAggregator(engine, runtime.job)
    restored.restore(loaded)
    assert len(restored._pending) == len(rows)
    for row in rows:
        start, end, key, state, count, sites, due, legs = row
        pending = restored._pending[
            next(
                slot for slot in restored._pending
                if slot[0].start == start and slot[1] == key
            )
        ]
        assert pending.count == count
        assert pending.sites == set(sites)
        assert pending.due == due
        # Every contributing site shipped a leg, and it survived.
        assert sorted(pending.legs) == [leg["site"] for leg in legs]
        assert all(
            pending.legs[leg["site"]].to_dict() == leg for leg in legs
        )
    counters = loaded["counters"]
    assert restored.late_partials == counters["late_partials"]
    assert restored.duplicates_dropped == counters["duplicates_dropped"]


def test_legacy_seven_element_rows_restore_without_provenance():
    engine, runtime = _build()
    loaded = _checkpoint_with_pending(engine, runtime)
    legacy = dict(loaded)
    legacy["pending"] = [row[:7] for row in loaded["pending"]]
    restored = GlobalAggregator(engine, runtime.job)
    restored.restore(legacy)
    assert len(restored._pending) == len(legacy["pending"])
    assert all(p.legs == {} for p in restored._pending.values())
    # The re-armed finalize timers still fire: every pending window
    # emits exactly once, just with an empty lineage.
    max_due = max(row[6] for row in legacy["pending"])
    engine.run_until(max_due + 5.0)
    assert len(restored.results) == len(legacy["pending"])
    assert all(r.lineage.legs == () for r in restored.results)
    assert len({(r.window, r.key) for r in restored.results}) == len(
        restored.results
    )


def test_restore_inside_open_batch_drop_window_loses_nothing():
    engine, runtime = _build(finalize_grace=20.0, reliable=True)
    runtime.enable_checkpointing(interval=5.0)
    # Drop window [40, 80); the crash AND the restart-plus-replay both
    # land inside it, so the replayed batches are eaten and must be
    # re-retried after the window lifts.
    plan = FaultPlan().drop_batches(40.0, 40.0)
    FaultInjector(engine, plan).arm()
    t0 = engine.sim.now
    engine.sim.schedule(50.0, runtime.crash_aggregator)
    engine.sim.schedule(60.0, runtime.restart_aggregator)
    runtime.start()
    engine.run_until(t0 + 130.0)
    for site in runtime.sites.values():
        site.stop_sources(drain=True)
    drain_cap = engine.sim.now + 1800.0
    while runtime.in_pipe() and engine.sim.now < drain_cap:
        engine.run_until(engine.sim.now + 10.0)
    assert runtime.in_pipe() == 0
    engine.run_until(engine.sim.now + runtime.job.watermark_lag + 30.0)
    runtime.stop()
    engine.run_until(engine.sim.now + runtime.job.finalize_grace + 60.0)

    assert runtime.aggregator_crashes == 1
    ingested = runtime.records_ingested()
    counted = runtime.records_in_results()
    late_dropped = sum(
        site.aggregator.late_dropped for site in runtime.sites.values()
    )
    abandoned = sum(
        site.shipping.records_abandoned
        for site in runtime.sites.values()
    )
    explained = (
        runtime.records_shed()
        + late_dropped
        + runtime.aggregator.late_partial_records
        + abandoned
    )
    assert ingested > 0
    assert counted + explained == ingested
    # Exactly-once at the sink: no (window, key) emitted twice, even
    # though the drop window forced every lost batch through a retry.
    slots = [(r.window, r.key) for r in runtime.results]
    assert len(set(slots)) == len(slots)
    retries = sum(
        site.shipping.retries for site in runtime.sites.values()
    )
    assert retries > 0  # the fault window actually bit
