"""Generator determinism, in-process and across interpreter boundaries.

A generated scenario IS its seed: the same ``(seed, profile, hours)``
must expand to the same deployment, the same rendered schedules, and the
same fault plan — in this process, in a fresh interpreter, forever.
"""

import json
import subprocess
import sys

from repro.config import GenConfig, SoakConfig
from repro.gen import GEN_PROFILES, ScenarioGenerator, run_soak
from repro.report import canonical_json


def vm_ids(scenario):
    """Deterministic stand-in for the deployed VM ids."""
    return {
        region: [
            f"vm-{i:04d}-{region.lower()}"
            for i in range(scenario.deployment[region])
        ]
        for region in scenario.site_regions
    }


def expand(seed, profile="adversarial", hours=6.0):
    gen = ScenarioGenerator(seed, profile=profile)
    scn = gen.generate(hours)
    plan = gen.adversity(scn, vm_ids(scn))
    return scn, plan


def test_same_seed_same_scenario():
    a, plan_a = expand(42)
    b, plan_b = expand(42)
    assert canonical_json(a.summary()) == canonical_json(b.summary())
    assert a.traffic == b.traffic  # full schedules, not just the summary
    assert plan_a.events == plan_b.events


def test_distinct_seeds_distinct_scenarios():
    a, _ = expand(42)
    b, _ = expand(43)
    assert canonical_json(a.summary()) != canonical_json(b.summary())


def test_distinct_profiles_distinct_scenarios():
    a, _ = expand(42, "calm")
    b, _ = expand(42, "hostile")
    assert canonical_json(a.summary()) != canonical_json(b.summary())


def test_calm_profile_generates_no_adversity():
    _, plan = expand(42, "calm")
    assert len(plan) == 0


def test_profiles_cover_all_soak_choices():
    from repro.config import SOAK_PROFILES

    assert set(SOAK_PROFILES) <= set(GEN_PROFILES)
    for cfg in GEN_PROFILES.values():
        assert isinstance(cfg, GenConfig)


def test_soak_digest_reproducible_in_process():
    a = run_soak(SoakConfig(seed=7, hours=0.1, profile="diurnal"))
    b = run_soak(SoakConfig(seed=7, hours=0.1, profile="diurnal"))
    assert a.digest == b.digest
    assert a.canonical_json() == b.canonical_json()
    c = run_soak(SoakConfig(seed=8, hours=0.1, profile="diurnal"))
    assert c.digest != a.digest


_CHILD = """
import json, sys
from repro.config import SoakConfig
from repro.gen import ScenarioGenerator, run_soak
from repro.report import canonical_json

seed = int(sys.argv[1])
gen = ScenarioGenerator(seed, profile="adversarial")
scn = gen.generate(6.0)
ids = {
    r: [f"vm-{i:04d}-{r.lower()}" for i in range(scn.deployment[r])]
    for r in scn.site_regions
}
plan = gen.adversity(scn, ids)
report = run_soak(SoakConfig(seed=seed, hours=0.1, profile="diurnal"))
print(json.dumps({
    "summary": canonical_json(scn.summary()),
    "plan": canonical_json(plan.to_dict()),
    "digest": report.digest,
}))
"""


def test_generation_stable_across_process_boundary():
    """A fresh interpreter expands the same seed to the same bytes.

    Mirrors the ``derive_seed`` cross-process test: nothing would save
    us if the generator leaned on salted ``hash()`` or interpreter
    state anywhere in its sampling path.
    """
    scn, plan = expand(7)
    report = run_soak(SoakConfig(seed=7, hours=0.1, profile="diurnal"))
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, "7"],
        capture_output=True,
        text=True,
        check=True,
    )
    child = json.loads(out.stdout)
    assert child["summary"] == canonical_json(scn.summary())
    assert child["plan"] == canonical_json(plan.to_dict())
    assert child["digest"] == report.digest
