"""Unit tests for the region catalog and latency model."""

import pytest

from repro.cloud.regions import (
    DEFAULT_REGIONS,
    Region,
    RegionCatalog,
    default_catalog,
    great_circle_km,
    pair_bias,
)


@pytest.fixture
def catalog():
    return default_catalog()


def test_default_has_six_regions(catalog):
    assert len(catalog) == 6
    assert set(catalog.codes()) == {"NEU", "WEU", "NUS", "SUS", "EUS", "WUS"}


def test_get_unknown_region(catalog):
    with pytest.raises(KeyError, match="unknown region"):
        catalog.get("MARS")


def test_duplicate_codes_rejected():
    r = DEFAULT_REGIONS[0]
    with pytest.raises(ValueError, match="duplicate"):
        RegionCatalog((r, r))


def test_rtt_symmetry(catalog):
    for a in catalog:
        for b in catalog:
            assert catalog.rtt(a, b) == pytest.approx(catalog.rtt(b, a))


def test_rtt_ordering_eu_us(catalog):
    """EU↔EU < US coasts < transatlantic — the ordering path selection uses."""
    eu_eu = catalog.rtt("NEU", "WEU")
    us_us = catalog.rtt("EUS", "WUS")
    eu_us = catalog.rtt("NEU", "WUS")
    assert eu_eu < us_us < eu_us


def test_rtt_plausible_magnitudes(catalog):
    # Transatlantic RTT should land in the tens of ms, not seconds.
    assert 0.05 < catalog.rtt("NEU", "NUS") < 0.2
    assert catalog.rtt("NEU", "NEU") == pytest.approx(0.001)


def test_great_circle_known_distance():
    dublin = next(r for r in DEFAULT_REGIONS if r.code == "NEU")
    amsterdam = next(r for r in DEFAULT_REGIONS if r.code == "WEU")
    assert 600 < great_circle_km(dublin, amsterdam) < 900


def test_pairs_ordered_count(catalog):
    assert len(list(catalog.pairs(ordered=True))) == 30
    assert len(list(catalog.pairs(ordered=False))) == 15


def test_pair_bias_bounded_and_stable():
    b = pair_bias("NEU", "NUS", spread=0.2)
    assert 0.8 <= b <= 1.2
    assert b == pair_bias("NEU", "NUS", spread=0.2)
    # Direction matters (asymmetric links).
    assert pair_bias("NEU", "NUS") != pair_bias("NUS", "NEU")


def test_region_str():
    assert str(DEFAULT_REGIONS[0]) == "NEU"
