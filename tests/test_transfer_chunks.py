"""Unit + property tests for chunking, dedup and reassembly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transfer.chunks import (
    Chunk,
    ChunkRegistry,
    Reassembler,
    chunk_plan,
    content_digest,
)


def test_chunk_plan_covers_payload_exactly():
    chunks = chunk_plan(100.0, 30.0)
    assert [c.size for c in chunks] == [30.0, 30.0, 30.0, 10.0]
    assert [c.seq for c in chunks] == [0, 1, 2, 3]
    assert chunks[-1].end == 100.0


def test_chunk_plan_single_chunk():
    chunks = chunk_plan(10.0, 100.0)
    assert len(chunks) == 1
    assert chunks[0].size == 10.0


def test_chunk_plan_validates():
    with pytest.raises(ValueError):
        chunk_plan(0.0, 10.0)
    with pytest.raises(ValueError):
        chunk_plan(10.0, 0.0)


def test_chunk_validation():
    with pytest.raises(ValueError):
        Chunk(-1, 0.0, 1.0)
    with pytest.raises(ValueError):
        Chunk(0, 0.0, 0.0)
    with pytest.raises(ValueError):
        Chunk(0, -1.0, 1.0)


def test_content_digest_stable():
    assert content_digest(b"abc") == content_digest(b"abc")
    assert content_digest(b"abc") != content_digest(b"abd")


def test_registry_dedup():
    reg = ChunkRegistry()
    assert reg.offer("d1") is True
    assert reg.offer("d1") is False
    assert reg.offer("d2") is True
    assert reg.unique == 2
    assert reg.duplicates == 1
    assert reg.dedup_ratio() == pytest.approx(1 / 3)


def test_registry_rejects_empty_digest():
    with pytest.raises(ValueError):
        ChunkRegistry().offer("")


def test_reassembler_out_of_order_completion():
    chunks = chunk_plan(100.0, 40.0)
    r = Reassembler(chunks)
    assert not r.complete
    r.deliver(chunks[2])
    r.deliver(chunks[0])
    assert r.missing() == [1]
    assert r.progress() == pytest.approx((40 + 20) / 100)
    r.deliver(chunks[1])
    assert r.complete
    assert r.bytes_received == 100.0


def test_reassembler_duplicates_counted_not_double():
    chunks = chunk_plan(100.0, 50.0)
    r = Reassembler(chunks)
    assert r.deliver(chunks[0]) is True
    assert r.deliver(chunks[0]) is False
    assert r.duplicate_arrivals == 1
    assert r.bytes_received == 50.0
    assert r.acks_sent == 2  # every arrival is acked


def test_reassembler_rejects_unknown_and_mismatched():
    chunks = chunk_plan(100.0, 50.0)
    r = Reassembler(chunks)
    with pytest.raises(ValueError, match="unexpected chunk"):
        r.deliver(Chunk(9, 0.0, 50.0))
    with pytest.raises(ValueError, match="does not match plan"):
        r.deliver(Chunk(0, 0.0, 49.0))


def test_reassembler_validates_plan():
    with pytest.raises(ValueError):
        Reassembler([])
    c = Chunk(0, 0.0, 10.0)
    with pytest.raises(ValueError, match="duplicate sequence"):
        Reassembler([c, Chunk(0, 10.0, 10.0)])


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
# Keep total/chunk ratios bounded: plans stay under ~10k chunks so the
# property suite runs in milliseconds, not gigabytes.
sizes = st.floats(min_value=0.5, max_value=1e5)
chunk_sizes = st.floats(min_value=16.0, max_value=1e5)


@given(sizes, chunk_sizes)
@settings(max_examples=100, deadline=None)
def test_property_chunk_plan_partition(total, chunk):
    """Chunks tile [0, total): contiguous, ordered, sizes sum to total."""
    chunks = chunk_plan(total, chunk)
    assert sum(c.size for c in chunks) == pytest.approx(total, rel=1e-9)
    cursor = 0.0
    for i, c in enumerate(chunks):
        assert c.seq == i
        assert c.offset == pytest.approx(cursor, rel=1e-9, abs=1e-9)
        cursor += c.size
    assert all(c.size <= chunk + 1e-9 for c in chunks)


@given(sizes, chunk_sizes, st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_property_reassembly_any_order(total, chunk, rnd):
    """Delivery in any permutation completes exactly once."""
    chunks = chunk_plan(total, chunk)
    shuffled = list(chunks)
    rnd.shuffle(shuffled)
    r = Reassembler(chunks)
    for c in shuffled[:-1]:
        r.deliver(c)
        assert not r.complete or len(chunks) == 1
    r.deliver(shuffled[-1])
    assert r.complete
    assert r.missing() == []
    assert r.bytes_received == pytest.approx(total, rel=1e-9)
