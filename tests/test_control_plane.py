"""Control plane: leader lease, admission, failover, live reconfig."""

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.config import ControlConfig, ServeConfig, SoakConfig
from repro.control import AdmissionGate, ControlPlane, LeaderLease
from repro.control.scenario import run_serve
from repro.core.engine import SageEngine
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan
from repro.flow.policy import FlowConfig
from repro.gen.soak import run_soak
from repro.monitor.agent import MonitorConfig
from repro.obs.audit import SLOAuditor
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.operators import builtin_aggregate
from repro.streaming.runtime import GeoStreamRuntime
from repro.streaming.shipping import RetryBudget, SageShipping
from repro.streaming.sources import PoissonSource
from repro.streaming.windows import TumblingWindows


class _Clock:
    def __init__(self) -> None:
        self.now = 0.0


# ----------------------------------------------------------------------
# LeaderLease
# ----------------------------------------------------------------------
def test_lease_acquire_renew_expire():
    clock = _Clock()
    lease = LeaderLease(clock, ttl=10.0)
    assert lease.holder() is None
    assert lease.try_acquire("a") == 1
    assert lease.holder() == "a"
    clock.now = 5.0
    assert lease.renew("a") is True
    assert lease.remaining == pytest.approx(10.0)
    # A live term refuses other claimants — the CAS half of the CAS.
    assert lease.try_acquire("b") is None
    # Expiry frees it; the new holder starts a new epoch.
    clock.now = 20.0
    assert lease.holder() is None
    assert lease.renew("a") is False  # expired terms cannot renew
    assert lease.try_acquire("b") == 2
    assert lease.holder() == "b"
    assert [t["holder"] for t in lease.transitions] == ["a", "b"]


def test_lease_same_holder_after_expiry_is_a_new_epoch():
    clock = _Clock()
    lease = LeaderLease(clock, ttl=5.0)
    assert lease.try_acquire("a") == 1
    clock.now = 3.0
    assert lease.try_acquire("a") == 1  # live own term: extend, no bump
    clock.now = 30.0
    # Someone else may have held in between — a fresh epoch is required.
    assert lease.try_acquire("a") == 2


def test_lease_release_lapses_now():
    clock = _Clock()
    lease = LeaderLease(clock, ttl=10.0)
    lease.try_acquire("a")
    assert lease.release("a") is True
    assert lease.holder() is None
    assert lease.release("a") is False
    with pytest.raises(ValueError):
        LeaderLease(clock, ttl=0.0)


# ----------------------------------------------------------------------
# AdmissionGate
# ----------------------------------------------------------------------
def test_admission_token_accounting():
    gate = AdmissionGate(rate=10.0, burst_s=2.0)  # capacity 20 tokens
    assert gate.admit(15, now=0.0) == 0  # within the burst
    assert gate.admit(10, now=0.0) == 5  # 5 tokens left -> reject 5
    assert gate.admitted == 20 and gate.rejected == 5
    # One second refills 10 tokens.
    assert gate.admit(10, now=1.0) == 0


def test_admission_saturated_rejects_everything():
    gate = AdmissionGate(rate=1000.0)
    assert gate.admit(50, now=0.0, saturated=True) == 50
    assert gate.rejected == 50 and gate.admitted == 0


def test_admission_configure_clamps_tokens():
    gate = AdmissionGate(rate=100.0, burst_s=2.0)  # 200 tokens
    gate.configure(rate=10.0, burst_s=1.0)  # capacity now 10
    assert gate.tokens <= 10.0
    assert gate.admit(50, now=0.0) == 40
    with pytest.raises(ValueError):
        gate.configure(rate=0.0)
    with pytest.raises(ValueError):
        AdmissionGate(rate=0.0)


# ----------------------------------------------------------------------
# RetryBudget (shipping) and MonitorConfig (detector) satellites
# ----------------------------------------------------------------------
def test_retry_budget_counts_exhaustion():
    budget = RetryBudget(2)
    assert budget.try_acquire() and budget.try_acquire()
    assert not budget.try_acquire()
    assert budget.exhausted_total == 1
    budget.release()
    assert budget.try_acquire()
    budget.release()
    budget.release()
    budget.release()  # floors at zero
    assert budget.active == 0
    with pytest.raises(ValueError):
        RetryBudget(0)


def test_monitor_config_validates_suspicion_bound():
    cfg = MonitorConfig(heartbeat_interval=3.0, failure_timeout=12.0)
    assert cfg.detection_bound == pytest.approx(15.0)
    with pytest.raises(ValueError):
        MonitorConfig(heartbeat_interval=5.0, failure_timeout=2.0)
    with pytest.raises(ValueError):
        MonitorConfig(heartbeat_interval=0.0)


# ----------------------------------------------------------------------
# Config surfaces
# ----------------------------------------------------------------------
def test_control_config_mttr_bound():
    cfg = ControlConfig(
        lease_ttl=10.0, watch_interval=2.0,
        promotion_delay=2.0, cold_fetch_delay=5.0,
    )
    assert cfg.mttr_bound == pytest.approx(19.0)
    with pytest.raises(ValueError):
        ControlConfig(renew_interval=10.0, lease_ttl=10.0)


def test_serve_config_rejects_overlapping_standbys():
    with pytest.raises(ValueError):
        ServeConfig(standby_regions=("NEU",))  # NEU is a site region
    cfg = ServeConfig()
    assert cfg.control().lease_ttl == cfg.lease_ttl


# ----------------------------------------------------------------------
# ControlPlane on a live runtime
# ----------------------------------------------------------------------
def _make_runtime(with_checkpointing=True):
    env = CloudEnvironment(seed=11, variability_sigma=0.0, glitches=False)
    engine = SageEngine(
        env, deployment_spec={"NEU": 2, "WEU": 2, "NUS": 3, "EUS": 2}
    )
    engine.start(learning_phase=60.0)
    flow = FlowConfig(policy="block", max_backlog=100)
    job = StreamJob(
        name="t",
        sites=[
            SiteSpec(
                region,
                [PoissonSource(f"src-{region}", rate=20.0, keys=["k"])],
            )
            for region in ("NEU", "WEU")
        ],
        aggregation_region="NUS",
        windows=TumblingWindows(10.0),
        aggregate=builtin_aggregate("count"),
        flow=flow,
    )
    runtime = GeoStreamRuntime(
        engine, job, SageShipping.factory(n_nodes=2), flow=flow
    )
    if with_checkpointing:
        runtime.enable_checkpointing(interval=10.0)
    return engine, runtime


def test_plane_requires_checkpointing():
    engine, runtime = _make_runtime(with_checkpointing=False)
    with pytest.raises(ValueError):
        ControlPlane(engine, runtime)


def test_apply_swaps_flow_and_stamps_config_version():
    engine, runtime = _make_runtime()
    plane = ControlPlane(engine, runtime)
    plane.add_leader()
    v = plane.apply({"max_backlog": 200, "policy": "shed"})
    assert v == 1
    assert runtime.aggregator.config_version == 1
    for site in runtime.sites.values():
        assert site.flow.max_backlog == 200
        assert site.flow.policy == "shed"
        assert site.credits.capacity == 200
    assert plane.config_log[0]["changes"]["max_backlog"] == 200
    with pytest.raises(ValueError):
        plane.apply({"no_such_knob": 1})
    with pytest.raises(ValueError):
        plane.apply({})


def test_apply_arms_and_disarms_admission_gates():
    engine, runtime = _make_runtime()
    plane = ControlPlane(engine, runtime)
    plane.add_leader()
    plane.apply({"admission_rate": 50.0, "admission_burst_s": 1.0})
    assert all(
        isinstance(s.admission, AdmissionGate)
        for s in runtime.sites.values()
    )
    plane.apply({"admission_rate": 0})
    assert all(s.admission is None for s in runtime.sites.values())


def test_split_brain_audit_fires_on_two_leaders():
    engine, runtime = _make_runtime()
    plane = ControlPlane(engine, runtime)
    plane.add_leader()
    rogue = plane.add_standby("EUS")
    auditor = SLOAuditor(engine, runtime, control=plane)
    auditor.check_now()
    assert not auditor.violations  # one leader: invariant holds
    rogue.role = "leader"  # a buggy promotion would look like this
    auditor.check_now()
    kinds = [v.kind for v in auditor.violations]
    assert "split_brain" in kinds


def test_leader_kill_without_plane_is_a_recorded_noop():
    engine, runtime = _make_runtime()
    plan = FaultPlan().kill_leader(5.0, recovery=30.0)
    assert plan.horizon() == pytest.approx(35.0)
    injector = FaultInjector(engine, plan).arm()
    runtime.start()
    engine.run_until(engine.sim.now + 20.0)
    assert [f.kind for f in injector.log] == [FaultKind.LEADER_KILL]
    assert runtime.aggregator_up  # nobody killed anything


# ----------------------------------------------------------------------
# End-to-end: serve scenario and failover soak
# ----------------------------------------------------------------------
def test_serve_failover_is_clean_and_exactly_once():
    report = run_serve(
        ServeConfig(
            duration=600.0,
            kill_leader_every=250.0,
            reconfigure_at=300.0,
            base_rate=30.0,
        )
    )
    d = report.details
    assert d.kills == 1 and d.failovers == 1
    assert d.epochs == 2  # initial term + one promotion
    assert d.mttr_max <= d.mttr_bound
    assert d.config_versions == 1
    # Windows split across both epochs, none lost, none doubled.
    assert set(d.results_by_epoch) == {"1", "2"}
    assert d.lost == 0
    assert d.audit["clean"]
    assert d.clean
    # The promoted leader's epoch is stamped on post-failover windows.
    assert d.failover_log[0]["epoch"] == 2


def test_soak_failovers_deterministic_and_clean():
    cfg = SoakConfig(hours=0.3, failovers=2, profile="calm")
    r1 = run_soak(cfg).details
    r2 = run_soak(cfg).details
    assert r1.failovers == 2 and r1.epochs == 3
    assert r1.clean
    assert r1.failover_mttr_max > 0.0
    assert r1.digest == r2.digest


def test_soak_rejects_too_many_failovers_for_horizon():
    with pytest.raises(ValueError):
        run_soak(SoakConfig(hours=0.1, failovers=5, profile="calm"))
