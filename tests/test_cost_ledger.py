"""Cost ledger: charge attribution, reconciliation, headline metrics."""

import math

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.cloud.pricing import CostMeter, PriceBook
from repro.core.engine import SageEngine
from repro.obs import CostLedger, Observer
from repro.streaming.dataflow import SiteSpec, StreamJob
from repro.streaming.operators import builtin_aggregate
from repro.streaming.runtime import GeoStreamRuntime
from repro.streaming.shipping import SageShipping
from repro.streaming.sources import PoissonSource
from repro.streaming.windows import TumblingWindows


def fresh_meter():
    return CostMeter(PriceBook())


# ----------------------------------------------------------------------
# Attribution buckets
# ----------------------------------------------------------------------
def test_link_egress_attribution():
    meter = fresh_meter()
    ledger = CostLedger(meter)
    meter.charge_egress(1e9, context="NEU->NUS")
    meter.charge_egress(2e9, context="NEU->NUS")
    meter.charge_egress(5e8, context="WEU->NUS")
    assert set(ledger.per_link) == {"NEU->NUS", "WEU->NUS"}
    assert ledger.per_link["NEU->NUS"].bytes == 3e9
    assert ledger.per_link["WEU->NUS"].bytes == 5e8
    assert ledger.egress_bytes == 3.5e9
    assert ledger.egress_usd == pytest.approx(meter.egress_usd)
    assert ledger.reconcile()


def test_unattributed_egress_lands_in_other_bucket():
    meter = fresh_meter()
    ledger = CostLedger(meter)
    meter.charge_egress(1e9)  # context-less caller
    meter.charge_egress(1e9, context="not-a-link")
    assert ledger.per_link == {}
    assert ledger.other_egress_bytes == 2e9
    assert ledger.other_usd == pytest.approx(meter.egress_usd)
    assert ledger.reconcile()  # unattributed still balances the meter


def test_vm_and_storage_attribution():
    meter = fresh_meter()
    ledger = CostLedger(meter)
    meter.charge_vm_time(0.10, 3600.0, context="NEU")
    meter.charge_vm_time(0.10, 1800.0, context="NEU")
    meter.charge_vm_time(0.20, 3600.0, context="NUS")
    meter.charge_storage_capacity(1e9, 600.0, context="blob:NEU")
    meter.charge_transactions(10, context="blob:NEU")
    assert set(ledger.per_region) == {"NEU", "NUS"}
    assert ledger.per_region["NEU"].seconds == 5400.0
    assert ledger.vm_usd == pytest.approx(meter.vm_usd)
    assert ledger.vm_seconds == 9000.0
    assert ledger.storage_usd == pytest.approx(meter.storage_usd)
    assert ledger.reconcile()


def test_baseline_excludes_charges_before_attach():
    meter = fresh_meter()
    meter.charge_egress(1e9, context="NEU->NUS")  # pre-existing spend
    ledger = CostLedger(meter)
    meter.charge_egress(2e9, context="NEU->NUS")
    # Only the post-attach charge is attributed, and the delta-based
    # reconciliation still balances.
    assert ledger.per_link["NEU->NUS"].bytes == 2e9
    assert ledger.reconcile()


# ----------------------------------------------------------------------
# Summary normalisation
# ----------------------------------------------------------------------
def test_summary_headline_metrics_and_gauges():
    obs = Observer()
    meter = fresh_meter()
    ledger = CostLedger(meter, observer=obs)
    meter.charge_egress(1e9, context="NEU->NUS")
    meter.charge_vm_time(0.10, 3600.0, context="NEU")
    summary = ledger.summary(windows=20, records=10_000)
    spend = summary.egress_usd + summary.vm_usd
    assert summary.usd_per_window == pytest.approx(spend / 20)
    assert summary.usd_per_1k_records == pytest.approx(spend / 10)
    assert summary.total_usd == pytest.approx(
        summary.egress_usd + summary.vm_usd
        + summary.storage_usd + summary.other_usd
    )
    # Gauges surface the normalised metrics and the attribution buckets.
    assert obs.gauge("ledger_usd_per_window").value == pytest.approx(
        summary.usd_per_window
    )
    assert obs.gauge("ledger_usd_per_1k_records").value == pytest.approx(
        summary.usd_per_1k_records
    )
    assert obs.gauge(
        "ledger_link_egress_usd", link="NEU->NUS"
    ).value == pytest.approx(summary.per_link["NEU->NUS"].usd)
    assert obs.gauge("ledger_vm_usd", region="NEU").value == pytest.approx(
        summary.per_region["NEU"].usd
    )
    payload = summary.to_dict()
    assert payload["total_usd"] == pytest.approx(summary.total_usd)
    assert payload["per_link"]["NEU->NUS"]["bytes"] == 1e9
    assert payload["per_region"]["NEU"]["seconds"] == 3600.0


def test_summary_without_denominators_keeps_nan():
    ledger = CostLedger(fresh_meter())
    summary = ledger.summary()
    assert math.isnan(summary.usd_per_window)
    assert math.isnan(summary.usd_per_1k_records)


# ----------------------------------------------------------------------
# End to end: the engine's ledger reconciles after a streaming run
# ----------------------------------------------------------------------
def test_engine_ledger_reconciles_after_streaming_run():
    obs = Observer()
    env = CloudEnvironment(seed=13, variability_sigma=0.0, glitches=False)
    engine = SageEngine(
        env, deployment_spec={"NEU": 2, "NUS": 2}, observer=obs
    )
    engine.start(learning_phase=60.0)
    job = StreamJob(
        name="cost",
        sites=[SiteSpec("NEU", [PoissonSource("p", rate=100.0, keys=["k"])])],
        aggregation_region="NUS",
        windows=TumblingWindows(10.0),
        aggregate=builtin_aggregate("count"),
    )
    runtime = GeoStreamRuntime(engine, job, SageShipping.factory(n_nodes=2))
    runtime.run_for(60.0)
    engine.env.finalize()  # bill the open VM leases

    ledger = engine.ledger
    assert ledger.reconcile()
    # Streaming egress rode the NEU->NUS link; VM time accrued in both
    # deployed regions once leases were finalized.
    assert "NEU->NUS" in ledger.per_link
    assert ledger.per_link["NEU->NUS"].bytes > 0
    assert set(ledger.per_region) >= {"NEU", "NUS"}
    assert ledger.vm_usd > 0
    summary = ledger.summary(
        windows=len(runtime.results), records=runtime.records_ingested()
    )
    assert summary.usd_per_window > 0
    assert summary.usd_per_1k_records > 0
    assert summary.total_usd >= summary.egress_usd + summary.vm_usd
