"""Tests for the Decision Manager's plan/execute/observe/re-plan loop."""

import pytest

from repro.cloud.deployment import CloudEnvironment
from repro.core.decision import DecisionConfig, DecisionManager
from repro.core.engine import SageEngine
from repro.simulation.units import GB, MB


def make_engine(seed=11, stable=True, **decision_kwargs):
    env = CloudEnvironment(
        seed=seed,
        variability_sigma=0.0 if stable else 0.2,
        diurnal_amplitude=0.0 if stable else 0.12,
        glitches=not stable,
    )
    engine = SageEngine(
        env,
        deployment_spec={"NEU": 6, "WEU": 4, "EUS": 4, "NUS": 6},
        decision_config=DecisionConfig(**decision_kwargs) if decision_kwargs else None,
    )
    engine.start(learning_phase=180.0)
    return engine


def complete(engine, mt, timeout=100_000.0):
    deadline = engine.sim.now + timeout
    while not mt.done and engine.sim.now < deadline:
        engine.run_until(min(engine.sim.now + 10, deadline))
    assert mt.done, "managed transfer did not complete"
    return mt


def test_link_throughputs_reads_monitor():
    engine = make_engine()
    thr = engine.decisions.link_throughputs()
    assert ("NEU", "NUS") in thr
    assert all(v > 0 for v in thr.values())


def test_build_plan_direct_and_multi_dc():
    engine = make_engine()
    plan = engine.decisions.build_plan("NEU", "NUS", 6)
    assert plan.routes
    assert plan.routes[0].src.region_code == "NEU"
    assert plan.routes[0].dst.region_code == "NUS"
    assert plan.vm_count() >= 2


def test_build_plan_avoids_unhealthy_vms():
    engine = make_engine()
    bad = engine.deployment.vms("NEU")[0]
    bad.degrade(0.2)
    plan = engine.decisions.build_plan("NEU", "NUS", 4)
    used = {vm.vm_id for r in plan.routes for vm in r.path}
    assert bad.vm_id not in used


def test_managed_transfer_completes_with_bookkeeping():
    engine = make_engine()
    mt = engine.decisions.transfer("NEU", "NUS", 500 * MB, n_nodes=4)
    complete(engine, mt)
    assert mt.elapsed > 0
    assert mt.mean_throughput() > 0
    assert mt.schema_history
    assert mt.bytes_confirmed >= 500 * MB * 0.999


def test_parallel_nodes_speed_up_transfer():
    engine1 = make_engine(seed=5)
    t1 = complete(
        engine1, engine1.decisions.transfer("NEU", "NUS", 1 * GB, n_nodes=1)
    ).elapsed
    engine8 = make_engine(seed=5)
    t8 = complete(
        engine8, engine8.decisions.transfer("NEU", "NUS", 1 * GB, n_nodes=8)
    ).elapsed
    assert t8 < t1 / 2.5


def test_budget_rejects_impossible():
    engine = make_engine()
    with pytest.raises(ValueError, match="budget"):
        engine.decisions.transfer("NEU", "NUS", 10 * GB, budget_usd=0.0001)


def test_deadline_unreachable_uses_max_nodes():
    engine = make_engine(max_nodes=8)
    mt = engine.decisions.transfer("NEU", "NUS", 2 * GB, deadline_s=0.5)
    complete(engine, mt)
    # Used the most aggressive option available.
    assert mt.sessions[0].plan.vm_count() >= 8


def test_degraded_node_triggers_replan():
    engine = make_engine(replan_interval=15.0, warmup=5.0)
    mt = engine.decisions.transfer("NEU", "NUS", 2 * GB, n_nodes=5)
    engine.run_until(engine.sim.now + 20)
    session = mt.sessions[0]
    victims = {vm for r in session.plan.routes for vm in r.path if
               vm.region_code == "NEU"}
    for vm in list(victims)[:2]:
        vm.degrade(0.2)
    complete(engine, mt)
    assert mt.replans >= 1
    last_plan = mt.sessions[-1].plan
    degraded_ids = {vm.vm_id for vm in victims if vm.health < 0.5}
    used_after = {vm.vm_id for r in last_plan.routes for vm in r.path}
    assert not (degraded_ids & used_after)


def test_no_replan_when_healthy_and_on_target():
    engine = make_engine(replan_interval=10.0)
    mt = engine.decisions.transfer("NEU", "NUS", 1 * GB, n_nodes=4)
    complete(engine, mt)
    assert mt.replans == 0
    assert len(mt.sessions) == 1


def test_gain_calibrates_from_completed_transfers():
    engine = make_engine()
    initial = engine.decisions.time_model.gain
    for _ in range(4):
        mt = engine.decisions.transfer("NEU", "NUS", 512 * MB, n_nodes=8)
        complete(engine, mt)
    assert engine.decisions.time_model.gain != initial
    # Selector gain follows the calibrated model.
    assert engine.decisions.selector.gain == engine.decisions.time_model.gain


def test_busy_vms_not_reused_concurrently():
    engine = make_engine()
    mt1 = engine.decisions.transfer("NEU", "NUS", 2 * GB, n_nodes=3)
    used1 = {vm.vm_id for r in mt1.sessions[0].plan.routes for vm in r.path
             if vm.region_code == "NEU"}
    mt2 = engine.decisions.transfer("NEU", "NUS", 2 * GB, n_nodes=3)
    used2 = {vm.vm_id for r in mt2.sessions[0].plan.routes for vm in r.path
             if vm.region_code == "NEU"}
    assert not (used1 & used2)
    complete(engine, mt1)
    complete(engine, mt2)


def test_transfer_size_validation():
    engine = make_engine()
    with pytest.raises(ValueError):
        engine.decisions.transfer("NEU", "NUS", 0.0)


def test_choose_option_knee_default():
    engine = make_engine()
    opt = engine.decisions.choose_option(1 * GB, 5 * MB)
    assert 1 <= opt.n_nodes <= engine.decisions.config.max_nodes
