"""Unit tests for the simulator."""

import pytest

from repro.simulation.engine import SimulationError, Simulator


def test_schedule_and_run_until():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "a")
    sim.schedule(10.0, fired.append, "b")
    sim.run_until(7.0)
    assert fired == ["a"]
    assert sim.now == 7.0
    sim.run_until(20.0)
    assert fired == ["a", "b"]
    assert sim.now == 20.0


def test_schedule_at_absolute():
    sim = Simulator()
    fired = []
    sim.schedule_at(3.0, fired.append, "x")
    sim.run_until(3.0)
    assert fired == ["x"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run_until(5.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(2.0, lambda: None)


def test_run_until_backwards_rejected():
    sim = Simulator()
    sim.run_until(10.0)
    with pytest.raises(SimulationError):
        sim.run_until(5.0)


def test_callbacks_can_schedule_more():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run_until(10.0)
    assert fired == [0, 1, 2, 3]
    assert sim.events_processed == 4


def test_cancel_scheduled_event():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, fired.append, "no")
    ev.cancel()
    sim.run_until(5.0)
    assert fired == []


def test_periodic_task_fires_and_stops():
    sim = Simulator()
    count = {"n": 0}

    def tick():
        count["n"] += 1

    task = sim.add_periodic(10.0, tick)
    sim.run_until(35.0)
    assert count["n"] == 3
    task.stop()
    sim.run_until(100.0)
    assert count["n"] == 3
    assert task.stopped


def test_periodic_immediate_start():
    sim = Simulator()
    times = []
    sim.add_periodic(10.0, lambda: times.append(sim.now), start_delay=0.0)
    sim.run_until(25.0)
    assert times == [0.0, 10.0, 20.0]


def test_periodic_invalid_interval():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.add_periodic(0.0, lambda: None)


def test_max_events_guard():
    sim = Simulator(max_events=100)

    def forever():
        sim.schedule(0.0, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run_until(1.0)


def test_tracer_sees_events():
    sim = Simulator()
    seen = []
    sim.add_tracer(lambda e: seen.append(e.time))
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run_until(5.0)
    assert seen == [1.0, 2.0]


def test_determinism_same_seed():
    def run(seed):
        sim = Simulator(seed=seed)
        rng = sim.rngs.get("test")
        out = []
        sim.add_periodic(1.0, lambda: out.append(float(rng.random())))
        sim.run_until(10.0)
        return out

    assert run(7) == run(7)
    assert run(7) != run(8)
